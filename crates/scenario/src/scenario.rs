//! Declarative scenario programs: ordered phases with seed-derived event
//! schedules.

use crate::overlay::{Millis, MINUTE_MS};
use pgrid_core::index::IndexId;
use pgrid_core::routing::PeerId;
use pgrid_net::experiment::Timeline;
use pgrid_workload::distributions::Distribution;

/// Salt folded into the seed for the executor's control RNG (query pacing,
/// churn schedules, workload key draws) — the same stream the historical
/// Section-5 driver used, so [`Scenario::from_timeline`] reproduces it bit
/// for bit.
pub const CONTROL_SEED_SALT: u64 = 0xD13;

/// How a query-issuing phase paces its load.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// The index the queries run against.
    pub index: IndexId,
    /// How many peers are notionally issuing (each peer queries every 1–2
    /// minutes, so the aggregate rate is `issuers` per 1–2 minutes).
    /// `0` means the whole population; the cluster worker passes its shard
    /// size so the aggregate across workers matches.
    pub issuers: usize,
}

/// One peer joining with a pre-computed contact list (deterministic join
/// plans of the cluster).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinEvent {
    /// Virtual time of the join.
    pub at: Millis,
    /// The joining peer.
    pub peer: usize,
    /// Its bootstrap contacts (already-joined peers).
    pub neighbours: Vec<PeerId>,
}

/// One explicit offline interval (deterministic churn plans of the
/// cluster).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The churning peer.
    pub peer: usize,
    /// Virtual time the peer goes offline.
    pub at: Millis,
    /// How long it stays offline.
    pub downtime: Millis,
}

/// One phase of a [`Scenario`].
///
/// Phases with an `until_min` advance virtual time to that minute boundary
/// and establish it as the base the next phase's schedules are derived
/// from; the others act instantaneously.
#[derive(Clone, Debug, PartialEq)]
pub enum Phase {
    /// Ramp-join peers `0..n` evenly across the window, each bootstrapped
    /// with `fanout` engine-drawn contacts (the Section-5.1 join phase).
    JoinWave {
        /// End of the join window, in minutes.
        until_min: u64,
        /// Bootstrap contacts per joining peer.
        fanout: usize,
    },
    /// Apply an explicit join schedule (cluster join plans).
    JoinSchedule {
        /// End of the join window, in minutes.
        until_min: u64,
        /// The joins, in time order.
        events: Vec<JoinEvent>,
    },
    /// Run the replication phase of an index, then let the pushes settle
    /// until the boundary.
    Replicate {
        /// The index to replicate.
        index: IndexId,
        /// End of the replication window, in minutes.
        until_min: u64,
    },
    /// Switch on construction for an index (instantaneous; combine with
    /// [`Phase::RunUntil`], [`Phase::ConstructUntilQuiescent`] or a churn
    /// window to give it time).
    StartConstruction {
        /// The index to construct.
        index: IndexId,
    },
    /// Let virtual time pass to the boundary.
    RunUntil {
        /// Target minute.
        until_min: u64,
    },
    /// Advance in `check_every_min` slices until the overlay reports
    /// quiescence, but at most `max_min` minutes.
    ConstructUntilQuiescent {
        /// Quiescence poll interval, in minutes.
        check_every_min: u64,
        /// Hard bound on the phase duration, in minutes.
        max_min: u64,
    },
    /// Issue queries at the paper's rate (each issuer queries every 1–2
    /// minutes) until the boundary.
    QueryLoad {
        /// The index the queries run against.
        index: IndexId,
        /// End of the query window, in minutes.
        until_min: u64,
        /// Notional number of issuing peers (`0` = whole population).
        issuers: usize,
    },
    /// Issue order-preserving range queries (each issuer queries every 1–2
    /// minutes, like [`Phase::QueryLoad`]) until the boundary.  Range
    /// bounds are drawn from the control RNG: a uniform start with a
    /// keyspace-fraction width of `width`.
    RangeLoad {
        /// The index the range queries run against.
        index: IndexId,
        /// End of the range-load window, in minutes.
        until_min: u64,
        /// Notional number of issuing peers (`0` = whole population).
        issuers: usize,
        /// Width of each range as a fraction of the keyspace, in `(0, 1]`.
        width: f64,
    },
    /// Random churn: every peer independently leaves and returns, with the
    /// schedule drawn from the control RNG; optionally with concurrent
    /// query load (the Section-5.1 churn phase).
    Churn {
        /// End of the churn window, in minutes.
        until_min: u64,
        /// Each peer's first offline interval starts within `[0, lead_ms)`
        /// of the phase base.
        lead_ms: Millis,
        /// Inclusive range of offline durations.
        downtime_ms: (Millis, Millis),
        /// Inclusive range of online gaps between offline intervals.
        gap_ms: (Millis, Millis),
        /// Concurrent query load, if any.
        queries: Option<QuerySpec>,
    },
    /// Apply an explicit churn schedule (cluster churn plans), optionally
    /// with concurrent query load.
    ChurnSchedule {
        /// End of the churn window, in minutes.
        until_min: u64,
        /// The offline intervals.
        events: Vec<ChurnEvent>,
        /// Concurrent query load, if any.
        queries: Option<QuerySpec>,
    },
    /// Assign every peer `keys_per_peer` fresh keys drawn from
    /// `distribution` on `index` and re-engage construction (the
    /// re-indexing / dynamic re-balancing workload).
    ShiftDistribution {
        /// The index whose data shifts.
        index: IndexId,
        /// The new key distribution.
        distribution: Distribution,
        /// Fresh keys per peer.
        keys_per_peer: usize,
    },
    /// Abruptly kill the hosting worker process once virtual time reaches
    /// `at_min` (the cluster's unplanned-death fault injection;
    /// single-process engines ignore it).  Instantaneous: the phase arms
    /// the kill, the death happens while a later phase advances time.
    KillWorker {
        /// Minute of virtual time at which the process dies.
        at_min: u64,
    },
    /// Inject a healing network partition: peers in different `groups`
    /// cannot exchange frames during `[from_min, until_min)`.
    /// Instantaneous: the phase schedules the window, the partition plays
    /// out (and heals) while later phases advance time.  Ignored by
    /// engines whose transport has no fault hooks.
    Partition {
        /// The isolated peer groups (peer indices; peers in different
        /// groups lose all frames between them).
        groups: Vec<Vec<usize>>,
        /// Minute the partition starts.
        from_min: u64,
        /// Minute the partition heals.
        until_min: u64,
    },
    /// Record a labelled metric snapshot.
    Snapshot {
        /// Label of the snapshot in the report.
        label: String,
    },
    /// Let outstanding queries time out (advances by the overlay's query
    /// timeout past the current boundary).
    Drain,
}

/// Keyspace fraction each range query of a timeline-derived range window
/// spans ([`Scenario::from_timeline`] and the cluster worker use the same
/// width, so single-process and sharded range loads are comparable).
pub const RANGE_LOAD_WIDTH: f64 = 0.15;

/// An ordered program of [`Phase`]s plus the seed its event schedules and
/// query workload derive from.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Seed of the executor's control RNG (already salted; see
    /// [`Scenario::builder`] and [`ScenarioBuilder::raw_control_seed`]).
    pub control_seed: u64,
    /// The phases, executed in order.
    pub phases: Vec<Phase>,
    /// Whether [`Phase::Snapshot`] also captures the hosted peers' key
    /// stores through [`crate::Overlay::capture_stores`].  Off by default:
    /// plain metric snapshots allocate nothing extra (engines with
    /// copy-on-write stores make the opt-in capture O(1) per peer).
    pub capture_stores: bool,
}

impl Scenario {
    /// Starts building a scenario whose control RNG derives from `seed`
    /// (the engine seed; the builder salts it with [`CONTROL_SEED_SALT`]).
    pub fn builder(seed: u64) -> ScenarioBuilder {
        ScenarioBuilder {
            control_seed: seed ^ CONTROL_SEED_SALT,
            phases: Vec::new(),
            capture_stores: false,
        }
    }

    /// The Section-5 deployment timeline as a canned scenario: join wave,
    /// replication, construction, query load, churn with queries, drain.
    ///
    /// Executed against a [`pgrid_net::runtime::Runtime`] built from a
    /// config with the same `seed`, this reproduces the historical direct
    /// driver bit for bit (pinned by the `timeline_parity` test).
    pub fn from_timeline(seed: u64, timeline: &Timeline) -> Scenario {
        let mut builder = Scenario::builder(seed)
            .join_wave(timeline.join_end_min, 6)
            .replicate(IndexId::PRIMARY, timeline.replicate_end_min)
            .start_construction(IndexId::PRIMARY)
            .run_until(timeline.construct_end_min);
        // The optional range window sits between construction and the
        // lookup load; the historical timelines leave it disabled
        // (`range_end_min: 0`), which keeps this conversion bit-identical
        // to the old direct driver.
        if timeline.range_end_min > timeline.construct_end_min {
            builder = builder.range_load(
                IndexId::PRIMARY,
                timeline.range_end_min,
                0,
                RANGE_LOAD_WIDTH,
            );
        }
        builder
            .query_load(IndexId::PRIMARY, timeline.query_end_min)
            .churn(
                timeline.end_min,
                5 * MINUTE_MS,
                (MINUTE_MS, 5 * MINUTE_MS),
                (5 * MINUTE_MS, 10 * MINUTE_MS),
                Some(QuerySpec {
                    index: IndexId::PRIMARY,
                    issuers: 0,
                }),
            )
            .drain()
            .build()
    }

    /// The simulator's plain construction run as a scenario: replicate,
    /// then construct until quiescent (at most `max_rounds` rounds).
    pub fn construction(max_rounds: usize) -> Scenario {
        Scenario::builder(0)
            .replicate(IndexId::PRIMARY, 0)
            .start_construction(IndexId::PRIMARY)
            .construct_until_quiescent(1, max_rounds as u64)
            .build()
    }
}

/// Fluent builder of [`Scenario`]s.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    control_seed: u64,
    phases: Vec<Phase>,
    capture_stores: bool,
}

impl ScenarioBuilder {
    /// Overrides the (already salted) control seed verbatim — the cluster
    /// worker uses this to decorrelate per-worker query streams.
    pub fn raw_control_seed(mut self, control_seed: u64) -> ScenarioBuilder {
        self.control_seed = control_seed;
        self
    }

    /// Appends an arbitrary phase.
    pub fn phase(mut self, phase: Phase) -> ScenarioBuilder {
        self.phases.push(phase);
        self
    }

    /// Appends a [`Phase::JoinWave`].
    pub fn join_wave(self, until_min: u64, fanout: usize) -> ScenarioBuilder {
        self.phase(Phase::JoinWave { until_min, fanout })
    }

    /// Appends a [`Phase::JoinSchedule`].
    pub fn join_schedule(self, until_min: u64, events: Vec<JoinEvent>) -> ScenarioBuilder {
        self.phase(Phase::JoinSchedule { until_min, events })
    }

    /// Appends a [`Phase::Replicate`].
    pub fn replicate(self, index: IndexId, until_min: u64) -> ScenarioBuilder {
        self.phase(Phase::Replicate { index, until_min })
    }

    /// Appends a [`Phase::StartConstruction`].
    pub fn start_construction(self, index: IndexId) -> ScenarioBuilder {
        self.phase(Phase::StartConstruction { index })
    }

    /// Appends a [`Phase::RunUntil`].
    pub fn run_until(self, until_min: u64) -> ScenarioBuilder {
        self.phase(Phase::RunUntil { until_min })
    }

    /// Appends a [`Phase::ConstructUntilQuiescent`].
    pub fn construct_until_quiescent(self, check_every_min: u64, max_min: u64) -> ScenarioBuilder {
        self.phase(Phase::ConstructUntilQuiescent {
            check_every_min,
            max_min,
        })
    }

    /// Appends a [`Phase::QueryLoad`] issued by the whole population.
    pub fn query_load(self, index: IndexId, until_min: u64) -> ScenarioBuilder {
        self.phase(Phase::QueryLoad {
            index,
            until_min,
            issuers: 0,
        })
    }

    /// Appends a [`Phase::QueryLoad`] with an explicit issuer count.
    pub fn query_load_from(
        self,
        index: IndexId,
        until_min: u64,
        issuers: usize,
    ) -> ScenarioBuilder {
        self.phase(Phase::QueryLoad {
            index,
            until_min,
            issuers,
        })
    }

    /// Appends a [`Phase::RangeLoad`].
    pub fn range_load(
        self,
        index: IndexId,
        until_min: u64,
        issuers: usize,
        width: f64,
    ) -> ScenarioBuilder {
        self.phase(Phase::RangeLoad {
            index,
            until_min,
            issuers,
            width,
        })
    }

    /// Appends a [`Phase::Churn`].
    pub fn churn(
        self,
        until_min: u64,
        lead_ms: Millis,
        downtime_ms: (Millis, Millis),
        gap_ms: (Millis, Millis),
        queries: Option<QuerySpec>,
    ) -> ScenarioBuilder {
        self.phase(Phase::Churn {
            until_min,
            lead_ms,
            downtime_ms,
            gap_ms,
            queries,
        })
    }

    /// Appends a [`Phase::ChurnSchedule`].
    pub fn churn_schedule(
        self,
        until_min: u64,
        events: Vec<ChurnEvent>,
        queries: Option<QuerySpec>,
    ) -> ScenarioBuilder {
        self.phase(Phase::ChurnSchedule {
            until_min,
            events,
            queries,
        })
    }

    /// Appends a [`Phase::ShiftDistribution`].
    pub fn shift_distribution(
        self,
        index: IndexId,
        distribution: Distribution,
        keys_per_peer: usize,
    ) -> ScenarioBuilder {
        self.phase(Phase::ShiftDistribution {
            index,
            distribution,
            keys_per_peer,
        })
    }

    /// Appends a [`Phase::KillWorker`].
    pub fn kill_worker(self, at_min: u64) -> ScenarioBuilder {
        self.phase(Phase::KillWorker { at_min })
    }

    /// Appends a [`Phase::Partition`].
    pub fn partition(
        self,
        groups: Vec<Vec<usize>>,
        from_min: u64,
        until_min: u64,
    ) -> ScenarioBuilder {
        self.phase(Phase::Partition {
            groups,
            from_min,
            until_min,
        })
    }

    /// Appends a [`Phase::Snapshot`].
    pub fn snapshot(self, label: &str) -> ScenarioBuilder {
        self.phase(Phase::Snapshot {
            label: label.to_string(),
        })
    }

    /// Appends a [`Phase::Drain`].
    pub fn drain(self) -> ScenarioBuilder {
        self.phase(Phase::Drain)
    }

    /// Makes every [`Phase::Snapshot`] also capture the hosted peers' key
    /// stores (copy-on-write handles on engines that support it).
    pub fn capture_stores(mut self) -> ScenarioBuilder {
        self.capture_stores = true;
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Scenario {
        Scenario {
            control_seed: self.control_seed,
            phases: self.phases,
            capture_stores: self.capture_stores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_timeline_mirrors_the_section_5_phases() {
        let timeline = Timeline::default();
        let scenario = Scenario::from_timeline(7, &timeline);
        assert_eq!(scenario.control_seed, 7 ^ CONTROL_SEED_SALT);
        assert_eq!(scenario.phases.len(), 7);
        assert!(matches!(
            scenario.phases[0],
            Phase::JoinWave { until_min, fanout: 6 } if until_min == timeline.join_end_min
        ));
        assert!(
            matches!(scenario.phases[2], Phase::StartConstruction { index } if index.is_primary())
        );
        assert!(matches!(
            scenario.phases[5],
            Phase::Churn { until_min, queries: Some(_), .. } if until_min == timeline.end_min
        ));
        assert!(matches!(scenario.phases[6], Phase::Drain));
    }

    #[test]
    fn from_timeline_inserts_the_optional_range_window() {
        let timeline = Timeline {
            range_end_min: 70,
            ..Timeline::default()
        };
        let scenario = Scenario::from_timeline(7, &timeline);
        assert_eq!(scenario.phases.len(), 8);
        assert!(matches!(
            scenario.phases[4],
            Phase::RangeLoad { until_min: 70, issuers: 0, width, .. }
                if width == RANGE_LOAD_WIDTH
        ));
        assert!(matches!(
            scenario.phases[5],
            Phase::QueryLoad { until_min, .. } if until_min == timeline.query_end_min
        ));
    }

    #[test]
    fn builder_keeps_declaration_order() {
        let scenario = Scenario::builder(1)
            .snapshot("a")
            .run_until(5)
            .snapshot("b")
            .build();
        assert!(matches!(&scenario.phases[0], Phase::Snapshot { label } if label == "a"));
        assert!(matches!(
            scenario.phases[1],
            Phase::RunUntil { until_min: 5 }
        ));
        assert!(matches!(&scenario.phases[2], Phase::Snapshot { label } if label == "b"));
    }
}
