//! The [`Overlay`] trait: what every engine of the reproduction can do.

use pgrid_core::index::IndexId;
use pgrid_core::key::Key;
use pgrid_core::routing::PeerId;

/// Milliseconds of virtual time (the shared clock of all engines).
pub type Millis = u64;

/// Milliseconds per minute of virtual time.
pub const MINUTE_MS: Millis = 60_000;

/// An overlay engine a [`crate::Scenario`] can be executed against.
///
/// Implementations: [`pgrid_net::runtime::Runtime`] over any transport
/// (see [`crate::net`]), the whole-system simulator wrapped as
/// [`crate::sim::SimOverlay`], and the cluster worker's paced shard
/// wrapper in `pgrid-cluster`.
///
/// Indexes: every engine hosts the implicit primary index
/// ([`IndexId::PRIMARY`]); engines that support multiple indexes over one
/// peer population (the net runtime) answer [`Overlay::has_index`] for the
/// secondary ids they registered.  Index-qualified operations on an
/// unhosted index panic — scenarios must only reference indexes the
/// overlay was set up with.
pub trait Overlay {
    /// Number of peers in the population.
    fn n_peers(&self) -> usize;

    /// Current virtual time.
    fn now(&self) -> Millis;

    /// Advances virtual time to `until`, processing whatever the engine
    /// processes (timer events, frame deliveries, construction rounds).
    fn advance_to(&mut self, until: Millis);

    /// Brings `peer` online, bootstrapping it with `fanout` contacts drawn
    /// by the engine.
    fn join(&mut self, peer: usize, fanout: usize);

    /// Brings `peer` online with a pre-computed contact list (deterministic
    /// join plans of the cluster).
    fn join_with_neighbours(&mut self, peer: usize, neighbours: Vec<PeerId>);

    /// Schedules `peer` to go offline at `at` and return `downtime` later.
    fn schedule_leave(&mut self, peer: usize, at: Millis, downtime: Millis);

    /// Pushes every online peer's original entries of `index` to random
    /// contacts (the replication phase).
    fn begin_replication(&mut self, index: IndexId);

    /// Switches on construction for `index` (periodic exchange ticks /
    /// rounds); also used to re-engage peers after a distribution shift.
    fn begin_construction(&mut self, index: IndexId);

    /// Whether construction has settled: no peer is actively driving
    /// partitioning work any more.
    fn quiescent(&self) -> bool;

    /// Whether `index` is hosted by this overlay.
    fn has_index(&self, index: IndexId) -> bool;

    /// Assigns fresh `keys` to `peer` on `index` (ground truth + local
    /// store), as a distribution shift or re-indexing does.
    fn insert(&mut self, index: IndexId, peer: usize, keys: Vec<Key>);

    /// Issues one lookup for `key` against `index` from an engine-chosen
    /// online peer.
    fn issue_query(&mut self, index: IndexId, key: Key);

    /// Issues one order-preserving range query for `[lo, hi]` against
    /// `index` from an engine-chosen online peer.
    fn issue_range_query(&mut self, index: IndexId, lo: Key, hi: Key);

    /// The keys of the ground-truth data assignment of `index` (the query
    /// workload draws from these).
    fn query_keys(&self, index: IndexId) -> Vec<Key>;

    /// How long an unanswered query may stay outstanding (0 for engines
    /// that answer synchronously).
    fn query_timeout_ms(&self) -> Millis;

    /// A labelled measurement of the overlay's current quality and query
    /// statistics, one entry per hosted index.
    fn snapshot(&self, label: &str) -> OverlaySnapshot;

    /// Requests that the hosting process die abruptly once virtual time
    /// reaches `at` (the cluster's unplanned-worker-death fault injection;
    /// the worker overlay exits the process mid-run).  Engines without a
    /// process boundary ignore it.
    fn schedule_kill(&mut self, _at: Millis) {}

    /// Injects a healing network partition: peers in different `groups`
    /// cannot exchange frames while `from <= now < until`.  Returns whether
    /// the engine's transport supports partition faults (`false` means the
    /// fault was ignored).
    fn inject_partition(&mut self, _groups: &[Vec<usize>], _from: Millis, _until: Millis) -> bool {
        false
    }

    /// Captures the primary-index key stores of the peers this engine
    /// hosts, as `(peer, store)` pairs.  Engines with copy-on-write
    /// stores return O(1) handles that share storage with the live peers
    /// until either side mutates; the default returns nothing.  Only
    /// called when [`crate::Scenario::capture_stores`] opted in.
    fn capture_stores(&self) -> Vec<(usize, pgrid_core::store::KeyStore)> {
        Vec::new()
    }
}

/// One labelled measurement of an overlay, taken by [`Phase::Snapshot`]
/// (and automatically at the end of every run).
///
/// [`Phase::Snapshot`]: crate::Phase::Snapshot
#[derive(Clone, Debug, PartialEq)]
pub struct OverlaySnapshot {
    /// The label the scenario gave this snapshot (`"final"` for the
    /// automatic end-of-run one).
    pub label: String,
    /// Virtual time of the measurement, in minutes.
    pub at_min: u64,
    /// Peers online at the time of the measurement.
    pub online: usize,
    /// Per-index overlay quality, primary index first.
    pub indexes: Vec<IndexSnapshot>,
}

impl OverlaySnapshot {
    /// The measurement of one index, if hosted.
    pub fn index(&self, index: IndexId) -> Option<&IndexSnapshot> {
        self.indexes.iter().find(|s| s.index == index)
    }
}

/// Overlay quality and query statistics of one index.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexSnapshot {
    /// Which index.
    pub index: IndexId,
    /// Mean trie depth of the index's peer paths.
    pub mean_path_length: f64,
    /// Load-balance deviation from the index's reference partitioning.
    pub balance_deviation: f64,
    /// Mean number of peers per distinct leaf partition.
    pub mean_replication: f64,
    /// Queries issued against this index so far.
    pub queries_issued: usize,
    /// Of those, queries answered successfully.
    pub queries_succeeded: usize,
    /// Range queries issued against this index so far.
    pub ranges_issued: usize,
    /// Of those, range queries whose slices covered the whole range.
    pub ranges_complete: usize,
    /// Median lookup latency in milliseconds (`None` for engines that
    /// answer synchronously or before any query was answered).
    pub latency_p50_ms: Option<u64>,
    /// 99th-percentile lookup latency in milliseconds.
    pub latency_p99_ms: Option<u64>,
    /// 99.9th-percentile lookup latency in milliseconds.
    pub latency_p999_ms: Option<u64>,
}

impl IndexSnapshot {
    /// Fraction of issued queries that succeeded (0 when none were issued).
    pub fn query_success_rate(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.queries_succeeded as f64 / self.queries_issued as f64
        }
    }
}
