//! The scenario executor: one driver for every [`Overlay`] engine.

use crate::overlay::{Millis, Overlay, OverlaySnapshot, MINUTE_MS};
use crate::scenario::{Phase, QuerySpec, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The unified result of a scenario run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Every [`Phase::Snapshot`] measurement, in order, plus an automatic
    /// `"final"` snapshot at the end of the run.
    pub snapshots: Vec<OverlaySnapshot>,
    /// Number of phases executed.
    pub phases_run: usize,
    /// Virtual time at the end of the run, in minutes.
    pub end_min: u64,
    /// Opt-in store captures, one per [`Phase::Snapshot`]; empty unless
    /// [`Scenario::capture_stores`] is set (the default takes none and
    /// allocates nothing).
    pub store_captures: Vec<StoreCapture>,
}

impl ScenarioReport {
    /// The snapshot with the given label, if taken.
    pub fn snapshot(&self, label: &str) -> Option<&OverlaySnapshot> {
        self.snapshots.iter().find(|s| s.label == label)
    }

    /// The automatic end-of-run snapshot.
    pub fn final_snapshot(&self) -> &OverlaySnapshot {
        self.snapshots.last().expect("every run takes one")
    }

    /// The store capture with the given label, if taken.
    pub fn store_capture(&self, label: &str) -> Option<&StoreCapture> {
        self.store_captures.iter().find(|c| c.label == label)
    }
}

/// The key stores of the hosted peers at one [`Phase::Snapshot`], captured
/// through [`Overlay::capture_stores`].  On copy-on-write engines every
/// handle shares storage with the live peer until either side mutates, so
/// a capture is O(1) per peer, not O(entries).
#[derive(Clone, Debug, PartialEq)]
pub struct StoreCapture {
    /// The label of the snapshot phase that took this capture.
    pub label: String,
    /// Virtual time of the capture, in minutes.
    pub at_min: u64,
    /// `(peer, store)` pairs, one per hosted peer.
    pub stores: Vec<(usize, pgrid_core::store::KeyStore)>,
}

/// Hooks called between phases — the cluster worker uses them to report
/// phase completion and park at coordinator barriers while keeping its
/// data plane serviced.
pub trait ScenarioHooks<O: Overlay + ?Sized> {
    /// Error the hook can fail with (aborts the run).
    type Error;

    /// Called after each phase finished executing.
    fn after_phase(
        &mut self,
        overlay: &mut O,
        phase_index: usize,
        phase: &Phase,
    ) -> Result<(), Self::Error>;
}

/// The no-op hooks of a plain [`run`].
pub struct NoHooks;

impl<O: Overlay + ?Sized> ScenarioHooks<O> for NoHooks {
    type Error = std::convert::Infallible;

    fn after_phase(&mut self, _: &mut O, _: usize, _: &Phase) -> Result<(), Self::Error> {
        Ok(())
    }
}

/// Executes `scenario` against `overlay` and reports the snapshots.
pub fn run<O: Overlay + ?Sized>(overlay: &mut O, scenario: &Scenario) -> ScenarioReport {
    match run_with_hooks(overlay, scenario, &mut NoHooks) {
        Ok(report) => report,
        Err(infallible) => match infallible {},
    }
}

/// Executes `scenario` against `overlay`, calling `hooks` after every
/// phase.  A hook error aborts the run.
pub fn run_with_hooks<O, H>(
    overlay: &mut O,
    scenario: &Scenario,
    hooks: &mut H,
) -> Result<ScenarioReport, H::Error>
where
    O: Overlay + ?Sized,
    H: ScenarioHooks<O>,
{
    let mut ctx = Context {
        rng: StdRng::seed_from_u64(scenario.control_seed),
        boundary_min: 0,
        next_query: None,
        snapshots: Vec::new(),
        capture_stores: scenario.capture_stores,
        store_captures: Vec::new(),
    };
    for (i, phase) in scenario.phases.iter().enumerate() {
        execute_phase(overlay, &mut ctx, phase);
        pgrid_obs::debug!(
            "scenario::exec",
            "phase {i} ({}) done at minute {}",
            phase_kind(phase),
            overlay.now() / MINUTE_MS
        );
        hooks.after_phase(overlay, i, phase)?;
    }
    ctx.snapshots.push(overlay.snapshot("final"));
    Ok(ScenarioReport {
        snapshots: ctx.snapshots,
        phases_run: scenario.phases.len(),
        end_min: overlay.now() / MINUTE_MS,
        store_captures: ctx.store_captures,
    })
}

/// Executor state threaded through the phases.
///
/// `next_query` is the query pacing clock: a [`Phase::QueryLoad`] resets it
/// to the phase start, a churn phase with queries *continues* it — exactly
/// the bookkeeping of the historical Section-5 driver, which is what makes
/// the canned timeline scenario bit-identical.
struct Context {
    rng: StdRng,
    boundary_min: u64,
    next_query: Option<Millis>,
    snapshots: Vec<OverlaySnapshot>,
    capture_stores: bool,
    store_captures: Vec<StoreCapture>,
}

/// Stable phase label of the executor's progress logs.
fn phase_kind(phase: &Phase) -> &'static str {
    match phase {
        Phase::JoinWave { .. } => "join_wave",
        Phase::JoinSchedule { .. } => "join_schedule",
        Phase::Replicate { .. } => "replicate",
        Phase::StartConstruction { .. } => "start_construction",
        Phase::RunUntil { .. } => "run_until",
        Phase::ConstructUntilQuiescent { .. } => "construct_until_quiescent",
        Phase::QueryLoad { .. } => "query_load",
        Phase::RangeLoad { .. } => "range_load",
        Phase::Churn { .. } => "churn",
        Phase::ChurnSchedule { .. } => "churn_schedule",
        Phase::ShiftDistribution { .. } => "shift_distribution",
        Phase::KillWorker { .. } => "kill_worker",
        Phase::Partition { .. } => "partition",
        Phase::Snapshot { .. } => "snapshot",
        Phase::Drain => "drain",
    }
}

fn execute_phase<O: Overlay + ?Sized>(overlay: &mut O, ctx: &mut Context, phase: &Phase) {
    match phase {
        Phase::JoinWave { until_min, fanout } => {
            let end = until_min * MINUTE_MS;
            let n = overlay.n_peers();
            for peer in 0..n {
                let at = (peer as u64 * end) / n as u64;
                overlay.advance_to(at);
                overlay.join(peer, *fanout);
            }
            overlay.advance_to(end);
            ctx.boundary_min = *until_min;
        }
        Phase::JoinSchedule { until_min, events } => {
            for event in events {
                overlay.advance_to(event.at);
                overlay.join_with_neighbours(event.peer, event.neighbours.clone());
            }
            overlay.advance_to(until_min * MINUTE_MS);
            ctx.boundary_min = *until_min;
        }
        Phase::Replicate { index, until_min } => {
            assert!(overlay.has_index(*index), "{index} is not hosted");
            overlay.begin_replication(*index);
            overlay.advance_to(until_min * MINUTE_MS);
            ctx.boundary_min = *until_min;
        }
        Phase::StartConstruction { index } => {
            assert!(overlay.has_index(*index), "{index} is not hosted");
            overlay.begin_construction(*index);
        }
        Phase::RunUntil { until_min } => {
            overlay.advance_to(until_min * MINUTE_MS);
            ctx.boundary_min = *until_min;
        }
        Phase::ConstructUntilQuiescent {
            check_every_min,
            max_min,
        } => {
            let deadline = overlay.now() + max_min * MINUTE_MS;
            while !overlay.quiescent() && overlay.now() < deadline {
                let next = (overlay.now() + (*check_every_min).max(1) * MINUTE_MS).min(deadline);
                overlay.advance_to(next);
            }
            ctx.boundary_min = overlay.now() / MINUTE_MS;
        }
        Phase::QueryLoad {
            index,
            until_min,
            issuers,
        } => {
            assert!(overlay.has_index(*index), "{index} is not hosted");
            let end = until_min * MINUTE_MS;
            let keys = overlay.query_keys(*index);
            let issuers = effective_issuers(overlay, *issuers);
            // The pacing clock restarts at the phase start (a fresh query
            // window).
            let mut next_query = overlay.now();
            if keys.is_empty() {
                overlay.advance_to(end);
            } else {
                while overlay.now() < end {
                    let step = ctx
                        .rng
                        .gen_range(MINUTE_MS / issuers / 2..=MINUTE_MS / issuers);
                    next_query += step.max(1);
                    overlay.advance_to(next_query);
                    let key = keys[ctx.rng.gen_range(0..keys.len())];
                    overlay.issue_query(*index, key);
                }
            }
            ctx.next_query = Some(next_query);
            ctx.boundary_min = *until_min;
        }
        Phase::RangeLoad {
            index,
            until_min,
            issuers,
            width,
        } => {
            assert!(overlay.has_index(*index), "{index} is not hosted");
            let end = until_min * MINUTE_MS;
            let issuers = effective_issuers(overlay, *issuers);
            let width = width.clamp(f64::EPSILON, 1.0);
            // Range load paces like query load but draws `[lo, hi]` bounds
            // from the control RNG instead of corpus keys.
            let mut next_query = overlay.now();
            while overlay.now() < end {
                let step = ctx
                    .rng
                    .gen_range(MINUTE_MS / issuers / 2..=MINUTE_MS / issuers);
                next_query += step.max(1);
                overlay.advance_to(next_query);
                let start = ctx.rng.gen_range(0.0..(1.0 - width).max(f64::EPSILON));
                let lo = pgrid_core::key::Key::from_fraction(start);
                let hi =
                    pgrid_core::key::Key::from_fraction((start + width).min(1.0 - f64::EPSILON));
                overlay.issue_range_query(*index, lo, hi.max(lo));
            }
            ctx.next_query = Some(next_query);
            ctx.boundary_min = *until_min;
        }
        Phase::Churn {
            until_min,
            lead_ms,
            downtime_ms,
            gap_ms,
            queries,
        } => {
            let end = until_min * MINUTE_MS;
            let base = ctx.boundary_min * MINUTE_MS;
            for peer in 0..overlay.n_peers() {
                let mut at = base
                    + if *lead_ms == 0 {
                        0
                    } else {
                        ctx.rng.gen_range(0..*lead_ms)
                    };
                while at < end {
                    let downtime = ctx.rng.gen_range(downtime_ms.0..=downtime_ms.1);
                    overlay.schedule_leave(peer, at, downtime);
                    at += downtime + ctx.rng.gen_range(gap_ms.0..=gap_ms.1);
                }
            }
            churn_window(overlay, ctx, end, queries);
            ctx.boundary_min = *until_min;
        }
        Phase::ChurnSchedule {
            until_min,
            events,
            queries,
        } => {
            for event in events {
                overlay.schedule_leave(event.peer, event.at, event.downtime);
            }
            churn_window(overlay, ctx, until_min * MINUTE_MS, queries);
            ctx.boundary_min = *until_min;
        }
        Phase::ShiftDistribution {
            index,
            distribution,
            keys_per_peer,
        } => {
            assert!(overlay.has_index(*index), "{index} is not hosted");
            for peer in 0..overlay.n_peers() {
                let keys = (0..*keys_per_peer)
                    .map(|_| distribution.sample(&mut ctx.rng))
                    .collect();
                overlay.insert(*index, peer, keys);
            }
            // Fresh data re-opens the partitioning question.
            overlay.begin_construction(*index);
        }
        Phase::KillWorker { at_min } => {
            overlay.schedule_kill(at_min * MINUTE_MS);
        }
        Phase::Partition {
            groups,
            from_min,
            until_min,
        } => {
            let supported =
                overlay.inject_partition(groups, from_min * MINUTE_MS, until_min * MINUTE_MS);
            if !supported {
                pgrid_obs::debug!(
                    "scenario::exec",
                    "partition fault ignored: transport has no fault hooks"
                );
            }
        }
        Phase::Snapshot { label } => {
            let snapshot = overlay.snapshot(label);
            ctx.snapshots.push(snapshot);
            if ctx.capture_stores {
                ctx.store_captures.push(StoreCapture {
                    label: label.clone(),
                    at_min: overlay.now() / MINUTE_MS,
                    stores: overlay.capture_stores(),
                });
            }
        }
        Phase::Drain => {
            overlay.advance_to(ctx.boundary_min * MINUTE_MS + overlay.query_timeout_ms());
        }
    }
}

/// The query/advance loop shared by both churn phases: the pacing clock
/// *continues* from the preceding query phase, advances are clamped to the
/// window, and no query is issued at or past the boundary (the historical
/// churn-phase semantics).
fn churn_window<O: Overlay + ?Sized>(
    overlay: &mut O,
    ctx: &mut Context,
    end: Millis,
    queries: &Option<QuerySpec>,
) {
    let Some(spec) = queries else {
        overlay.advance_to(end);
        return;
    };
    let keys = overlay.query_keys(spec.index);
    let issuers = effective_issuers(overlay, spec.issuers);
    let mut next_query = ctx.next_query.unwrap_or_else(|| overlay.now());
    if keys.is_empty() {
        overlay.advance_to(end);
        return;
    }
    while overlay.now() < end {
        let step = ctx
            .rng
            .gen_range(MINUTE_MS / issuers / 2..=MINUTE_MS / issuers);
        next_query += step.max(1);
        overlay.advance_to(next_query.min(end));
        if overlay.now() >= end {
            break;
        }
        let key = keys[ctx.rng.gen_range(0..keys.len())];
        overlay.issue_query(spec.index, key);
    }
    ctx.next_query = Some(next_query);
}

fn effective_issuers<O: Overlay + ?Sized>(overlay: &O, issuers: usize) -> u64 {
    let n = if issuers == 0 {
        overlay.n_peers()
    } else {
        issuers
    };
    (n as u64).max(1)
}
