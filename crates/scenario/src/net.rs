//! [`Overlay`] for the message-level deployment runtime (any transport).

use crate::overlay::{IndexSnapshot, Millis, Overlay, OverlaySnapshot, MINUTE_MS};
use pgrid_core::balance::compare_to_reference;
use pgrid_core::index::IndexId;
use pgrid_core::key::Key;
use pgrid_core::reference::ReferencePartitioning;
use pgrid_core::routing::PeerId;
use pgrid_net::runtime::Runtime;
use pgrid_transport::Transport;

impl<T: Transport> Overlay for Runtime<T> {
    fn n_peers(&self) -> usize {
        self.config.n_peers
    }

    fn now(&self) -> Millis {
        Runtime::now(self)
    }

    fn advance_to(&mut self, until: Millis) {
        self.run_until(until);
    }

    fn join(&mut self, peer: usize, fanout: usize) {
        self.join_peer(peer, fanout);
    }

    fn join_with_neighbours(&mut self, peer: usize, neighbours: Vec<PeerId>) {
        self.join_peer_with_neighbours(peer, neighbours);
    }

    fn schedule_leave(&mut self, peer: usize, at: Millis, downtime: Millis) {
        self.schedule_churn(peer, at, downtime);
    }

    fn begin_replication(&mut self, index: IndexId) {
        self.replication_phase_on(index);
    }

    fn begin_construction(&mut self, index: IndexId) {
        self.start_construction_on(index);
    }

    fn quiescent(&self) -> bool {
        self.construction_quiescent()
    }

    fn has_index(&self, index: IndexId) -> bool {
        self.has_index_state(index)
    }

    fn insert(&mut self, index: IndexId, peer: usize, keys: Vec<Key>) {
        self.insert_entries(index, peer, keys);
    }

    fn issue_query(&mut self, index: IndexId, key: Key) {
        self.issue_query_on(index, key);
    }

    fn issue_range_query(&mut self, index: IndexId, lo: Key, hi: Key) {
        self.issue_range_query_on(index, lo, hi);
    }

    fn query_keys(&self, index: IndexId) -> Vec<Key> {
        self.original_entries_of(index)
            .iter()
            .map(|e| e.key)
            .collect()
    }

    fn query_timeout_ms(&self) -> Millis {
        self.config.query_timeout_ms
    }

    fn capture_stores(&self) -> Vec<(usize, pgrid_core::store::KeyStore)> {
        self.capture_primary_stores()
    }

    fn inject_partition(&mut self, groups: &[Vec<usize>], from: Millis, until: Millis) -> bool {
        let groups = groups
            .iter()
            .map(|g| g.iter().map(|&p| PeerId(p as u64)).collect())
            .collect();
        self.inject_link_fault(pgrid_transport::LinkFault::Partition {
            groups,
            from,
            until,
        })
    }

    fn snapshot(&self, label: &str) -> OverlaySnapshot {
        let online = self.online_count();
        let indexes = self
            .index_ids()
            .into_iter()
            .map(|index| {
                let paths: Vec<_> = (0..self.config.n_peers)
                    .map(|peer| self.peer_state(index, peer).path)
                    .collect();
                let keys: Vec<Key> = self
                    .original_entries_of(index)
                    .iter()
                    .map(|e| e.key)
                    .collect();
                let reference =
                    ReferencePartitioning::compute(&keys, self.config.n_peers, self.params());
                let balance = compare_to_reference(&reference, &paths);
                let mean_path_length =
                    paths.iter().map(|p| p.len() as f64).sum::<f64>() / paths.len().max(1) as f64;
                let replication = pgrid_core::trie::peer_count_trie(paths.iter());
                let mean_replication = if replication.is_empty() {
                    0.0
                } else {
                    replication.iter().map(|(_, &n)| n as f64).sum::<f64>()
                        / replication.len() as f64
                };
                let stats = self.metrics.stats(index);
                IndexSnapshot {
                    index,
                    mean_path_length,
                    balance_deviation: balance.deviation,
                    mean_replication,
                    queries_issued: stats.issued as usize,
                    queries_succeeded: stats.succeeded as usize,
                    ranges_issued: stats.ranges_issued as usize,
                    ranges_complete: stats.ranges_complete as usize,
                    latency_p50_ms: stats.latency.p50(),
                    latency_p99_ms: stats.latency.p99(),
                    latency_p999_ms: stats.latency.p999(),
                }
            })
            .collect();
        OverlaySnapshot {
            label: label.to_string(),
            at_min: Runtime::now(self) / MINUTE_MS,
            online,
            indexes,
        }
    }
}
