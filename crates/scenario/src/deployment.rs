//! The Section-5 deployment as a canned scenario.
//!
//! These are the drop-in replacements for the historical direct drivers in
//! `pgrid_net::experiment`: the same configuration and timeline produce a
//! byte-equal [`DeploymentReport`] (pinned by the `timeline_parity`
//! integration test), but the run goes through [`crate::exec::run`] — so
//! anything the scenario API can express (extra churn windows, secondary
//! indexes, snapshots) composes with the canned timeline.

use crate::exec;
use crate::scenario::Scenario;
use pgrid_net::experiment::{assemble_report, DeploymentReport, ReportInputs, Timeline};
use pgrid_net::runtime::{NetConfig, Runtime};
use pgrid_transport::{Transport, TransportError};

/// Runs the full deployment experiment over the deterministic loopback
/// transport, driven by the scenario executor.
pub fn run_deployment(config: &NetConfig, timeline: &Timeline) -> DeploymentReport {
    let mut runtime = Runtime::new(config.clone());
    drive(&mut runtime, config, timeline)
}

/// Runs the full deployment experiment over the given transport backend,
/// driven by the scenario executor.
pub fn run_deployment_with<T: Transport>(
    config: &NetConfig,
    timeline: &Timeline,
    transport: T,
) -> Result<DeploymentReport, TransportError> {
    let mut runtime = Runtime::with_transport(config.clone(), transport)?;
    Ok(drive(&mut runtime, config, timeline))
}

fn drive<T: Transport>(
    runtime: &mut Runtime<T>,
    config: &NetConfig,
    timeline: &Timeline,
) -> DeploymentReport {
    let scenario = Scenario::from_timeline(config.seed, timeline);
    let _ = exec::run(runtime, &scenario);
    assemble_report(&ReportInputs::from_runtime(runtime), timeline)
}
