//! # pgrid-scenario
//!
//! Composable experiment API of the P-Grid reproduction.
//!
//! The paper's evaluation (Sections 4–5) is *one* apparatus exercised under
//! many regimes — construction, replication, churn, query load — yet each
//! engine historically grew its own hard-coded driver.  This crate unifies
//! them behind three pieces:
//!
//! * the [`Overlay`] trait ([`overlay`]) — the operations every engine
//!   already shares (join, leave/churn, insert, query, advance time,
//!   replication and construction control, metric snapshots), implemented
//!   for the message-level [`pgrid_net::runtime::Runtime`] over *any*
//!   transport and for the whole-system simulator (wrapped as
//!   [`sim::SimOverlay`]);
//! * the declarative [`Scenario`] ([`scenario`]) — an ordered program of
//!   phases ([`Phase`]: join waves, replication, construction, churn
//!   windows, query load, distribution shifts, snapshots) whose event
//!   schedules derive deterministically from a seed;
//! * one executor ([`exec::run`] / [`exec::run_with_hooks`]) producing a
//!   unified [`ScenarioReport`].
//!
//! The historical drivers are thin adapters on top: the Section-5
//! [`pgrid_net::experiment::Timeline`] is a canned scenario
//! ([`Scenario::from_timeline`], bit-identical to the direct driver — see
//! [`deployment`]), the Figure-6 simulation sweeps run every construction
//! through the executor ([`sweeps`]), and the `pgrid-cluster` worker drives
//! its shard through [`exec::run_with_hooks`] with phase-barrier hooks.
//!
//! ```
//! use pgrid_scenario::prelude::*;
//! use pgrid_net::runtime::{NetConfig, Runtime};
//!
//! let config = NetConfig { n_peers: 16, seed: 9, ..NetConfig::default() };
//! let scenario = Scenario::builder(config.seed)
//!     .join_wave(2, 4)
//!     .replicate(IndexId::PRIMARY, 3)
//!     .start_construction(IndexId::PRIMARY)
//!     .run_until(8)
//!     .query_load(IndexId::PRIMARY, 10)
//!     .drain()
//!     .build();
//! let mut overlay = Runtime::new(config);
//! let report = pgrid_scenario::exec::run(&mut overlay, &scenario);
//! assert!(report.end_min >= 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod deployment;
pub mod exec;
pub mod net;
pub mod overlay;
pub mod scenario;
pub mod sim;
pub mod sweeps;

pub use exec::{run, run_with_hooks, NoHooks, ScenarioHooks, ScenarioReport, StoreCapture};
pub use overlay::{IndexSnapshot, Overlay, OverlaySnapshot};
pub use scenario::{
    ChurnEvent, JoinEvent, Phase, QuerySpec, Scenario, ScenarioBuilder, RANGE_LOAD_WIDTH,
};

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::deployment::{run_deployment, run_deployment_with};
    pub use crate::exec::{run, run_with_hooks, NoHooks, ScenarioHooks, ScenarioReport};
    pub use crate::overlay::{IndexSnapshot, Overlay, OverlaySnapshot};
    pub use crate::scenario::{
        ChurnEvent, JoinEvent, Phase, QuerySpec, Scenario, ScenarioBuilder, RANGE_LOAD_WIDTH,
    };
    pub use crate::sim::SimOverlay;
    pub use pgrid_core::index::IndexId;
}
