//! # pgrid-core
//!
//! Core primitives of a data-oriented, trie-structured overlay network
//! (P-Grid), as described in *"Indexing data-oriented overlay networks"*
//! (Aberer, Datta, Hauswirth, Schmidt — VLDB 2005).
//!
//! The crate provides the building blocks that both the deterministic
//! simulator (`pgrid-sim`) and the threaded in-process deployment runtime
//! (`pgrid-net`) are built from:
//!
//! * [`key`] — data keys in the key space `[0, 1)` and order-preserving
//!   mappings from application identifiers (e.g. index terms) into it;
//! * [`path`] — trie paths / key space partitions induced by recursive
//!   binary bisection;
//! * [`store`] — the local key store of a peer, including the sampling
//!   estimator used by the decentralized partitioning decisions;
//! * [`routing`] — distributed prefix-routing tables;
//! * [`peer`] — the complete local state of one peer and the local
//!   interactions of Figure 2 (split / replicate / refer);
//! * [`search`] — prefix-routing lookups and order-preserving range queries
//!   over any [`search::NetworkView`];
//! * [`reference`] — the global reference partitioner (Algorithm 1) that
//!   defines optimal load balancing;
//! * [`exchange`] — the shared split/replicate/refer exchange engine of
//!   Figure 2: partition assessment, adaptive decision probabilities and
//!   decision application, used identically by both runtimes;
//! * [`index`] — identifiers for multiple logical indexes hosted by one
//!   peer population;
//! * [`balance`] — the load-balance deviation metric of Section 4.4;
//! * [`histogram`] — fixed-bucket log-scale histograms for latency
//!   accounting at production query rates;
//! * [`replication`] — replica-count estimation from key-set overlap and
//!   anti-entropy reconciliation;
//! * [`trie`] — an explicit trie representation used by analyses and tests.
//!
//! # Quick example
//!
//! ```
//! use pgrid_core::prelude::*;
//!
//! // Keys live in [0, 1); partitions are binary prefixes of the key space.
//! let key = Key::from_fraction(0.7);
//! let partition = Path::parse("10");
//! assert!(partition.covers(key));
//!
//! // The global reference partitioner defines optimal load balancing.
//! let keys: Vec<Key> = (0..1000).map(|i| Key::from_fraction(i as f64 / 1000.0)).collect();
//! let reference = ReferencePartitioning::compute(&keys, 64, BalanceParams::new(50, 4));
//! assert!(reference.num_partitions() > 1);
//! assert!(reference.load_trie().is_complete_partition());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod balance;
pub mod error;
pub mod exchange;
pub mod histogram;
pub mod index;
pub mod key;
pub mod path;
pub mod peer;
pub mod reference;
pub mod replication;
pub mod routing;
pub mod search;
pub mod store;
pub mod trie;

/// Convenient re-exports of the most frequently used types.
pub mod prelude {
    pub use crate::balance::{compare_to_reference, BalanceReport};
    pub use crate::error::OverlayError;
    pub use crate::exchange::{Assessment, ExchangeDecision, ExchangeEngine, ProbabilityStrategy};
    pub use crate::histogram::LogHistogram;
    pub use crate::index::IndexId;
    pub use crate::key::{DataEntry, DataId, Key};
    pub use crate::path::Path;
    pub use crate::peer::PeerState;
    pub use crate::reference::{BalanceParams, ReferencePartitioning};
    pub use crate::replication::{estimate_replica_count, reconcile};
    pub use crate::routing::{PeerId, RoutingEntry, RoutingTable};
    pub use crate::search::{lookup, range_query, LookupResult, NetworkView, RangeResult};
    pub use crate::store::{KeyStore, RestrictedView, StoreRead};
    pub use crate::trie::PartitionTrie;
}
