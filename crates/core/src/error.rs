//! Error types of the core crate.

use std::fmt;

/// Errors produced by overlay operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayError {
    /// A lookup could not be routed to a responsible peer.
    RoutingFailed {
        /// Level at which no usable reference was available.
        level: usize,
    },
    /// An operation referenced a peer that does not exist.
    UnknownPeer(u64),
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::RoutingFailed { level } => {
                write!(f, "routing failed: no usable reference at level {level}")
            }
            OverlayError::UnknownPeer(id) => write!(f, "unknown peer P{id}"),
            OverlayError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for OverlayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            OverlayError::RoutingFailed { level: 3 }.to_string(),
            "routing failed: no usable reference at level 3"
        );
        assert_eq!(OverlayError::UnknownPeer(7).to_string(), "unknown peer P7");
        assert!(OverlayError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
    }
}
