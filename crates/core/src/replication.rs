//! Structural replication support: estimating the number of replicas of a
//! partition from key-set overlap and reconciling replica contents.
//!
//! During construction peers must estimate how many peers are currently
//! associated with their partition in order to decide whether a further
//! split is justified (Algorithm 1 needs both the data load and the peer
//! count).  Learning the exact replica set would serialise the process, so
//! the paper instead estimates the replica count from the overlap of the key
//! sets of two interacting peers (Section 4.2): initially every key is
//! replicated `n_min` times, so sparse overlap between two random replicas
//! indicates that the partition's keys are spread over many peers.

use crate::key::DataEntry;
use crate::store::KeyStore;

/// Estimates the number of peers associated with the current partition from
/// the key sets of two interacting peers.
///
/// Model: the partition holds `D` distinct entries, each replicated
/// `replication` times over `m` peers, so a peer holds on average
/// `D * replication / m` entries and two random peers share
/// `|K1| * |K2| / D` entries in expectation.  Solving for `m` with
/// `D = |K1| * |K2| / |K1 ∩ K2|` and the average peer holding
/// `(|K1| + |K2|) / 2` entries gives
///
/// ```text
/// m ≈ 2 * replication * |K1| * |K2| / (|K1 ∩ K2| * (|K1| + |K2|))
/// ```
///
/// Sanity check (the example given in the paper): for two exact replicas
/// (`K1 == K2`) the estimate is exactly `replication`, as desired.  A
/// disjoint pair yields `+∞` (the overlap carries no evidence of a small
/// replica group), which callers should clamp.
///
/// Returns `None` when either store is empty (no information).
pub fn estimate_replica_count(a: &KeyStore, b: &KeyStore, replication: usize) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let overlap = a.intersection_size(b);
    let (ka, kb) = (a.len() as f64, b.len() as f64);
    if overlap == 0 {
        return Some(f64::INFINITY);
    }
    Some(2.0 * replication as f64 * ka * kb / (overlap as f64 * (ka + kb)))
}

/// Outcome of an anti-entropy exchange between two replicas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReconcileOutcome {
    /// Entries shipped from the first to the second peer.
    pub a_to_b: usize,
    /// Entries shipped from the second to the first peer.
    pub b_to_a: usize,
}

impl ReconcileOutcome {
    /// Total entries moved over the network.
    pub fn total_transferred(&self) -> usize {
        self.a_to_b + self.b_to_a
    }
}

/// Performs a symmetric anti-entropy reconciliation between two replica
/// stores ("possibility 2" of Figure 2): afterwards both stores hold the
/// union of the two original key sets.  Returns how many entries travelled
/// in each direction, which the simulators account as bandwidth.
pub fn reconcile(a: &mut KeyStore, b: &mut KeyStore) -> ReconcileOutcome {
    let to_b: Vec<DataEntry> = b.missing_from(a);
    let to_a: Vec<DataEntry> = a.missing_from(b);
    let outcome = ReconcileOutcome {
        a_to_b: to_b.len(),
        b_to_a: to_a.len(),
    };
    a.merge_from(to_a);
    b.merge_from(to_b);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{DataId, Key};

    fn store(range: std::ops::Range<u64>) -> KeyStore {
        range
            .map(|i| DataEntry::new(Key::from_fraction(i as f64 / 1000.0), DataId(i)))
            .collect()
    }

    #[test]
    fn identical_replicas_estimate_exactly_replication() {
        let a = store(0..50);
        let b = store(0..50);
        let est = estimate_replica_count(&a, &b, 5).unwrap();
        assert!((est - 5.0).abs() < 1e-9);
    }

    #[test]
    fn half_overlap_estimates_more_peers() {
        let a = store(0..100);
        let b = store(50..150);
        let est = estimate_replica_count(&a, &b, 5).unwrap();
        assert!(
            est > 5.0,
            "estimate {est} should exceed the replication factor"
        );
        assert!(est.is_finite());
    }

    #[test]
    fn disjoint_stores_yield_infinite_estimate() {
        let a = store(0..50);
        let b = store(500..550);
        assert_eq!(estimate_replica_count(&a, &b, 5), Some(f64::INFINITY));
    }

    #[test]
    fn empty_store_gives_no_estimate() {
        let a = KeyStore::new();
        let b = store(0..10);
        assert_eq!(estimate_replica_count(&a, &b, 5), None);
        assert_eq!(estimate_replica_count(&b, &a, 5), None);
    }

    #[test]
    fn estimate_scales_inversely_with_overlap() {
        // Fixed store sizes, shrinking overlap => growing estimate.
        let a = store(0..100);
        let mut last = 0.0;
        for shift in [0u64, 20, 40, 60, 80] {
            let b = store(shift..shift + 100);
            let est = estimate_replica_count(&a, &b, 5).unwrap();
            assert!(est >= last, "estimate must grow as overlap shrinks");
            last = est;
        }
    }

    #[test]
    fn reconcile_unions_both_stores() {
        let mut a = store(0..60);
        let mut b = store(40..100);
        let out = reconcile(&mut a, &mut b);
        assert_eq!(out.a_to_b, 40); // entries 0..40
        assert_eq!(out.b_to_a, 40); // entries 60..100
        assert_eq!(out.total_transferred(), 80);
        assert_eq!(a.len(), 100);
        assert_eq!(b.len(), 100);
        assert_eq!(a, b);
        // reconciling again moves nothing
        let out2 = reconcile(&mut a, &mut b);
        assert_eq!(out2.total_transferred(), 0);
    }
}
