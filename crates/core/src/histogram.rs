//! Fixed-bucket log-scale histograms for latency accounting.
//!
//! The query data plane answers millions of lookups per run; keeping one
//! record per query (as the first deployment driver did) grows without
//! bound.  [`LogHistogram`] aggregates observations into a fixed array of
//! log-linear buckets instead: values below 8 get exact buckets, and every
//! octave above that is split into 8 sub-buckets, giving a worst-case
//! quantile error of 12.5% at constant memory.  Histograms merge by bucket
//! addition, which is what lets sharded cluster workers stream aggregates
//! instead of raw query records.

/// Exact buckets for values `0..EXACT` (one bucket per value).
const EXACT: u64 = 8;

/// Sub-buckets per octave above the exact range.
const SUBS: usize = 8;

/// Octaves covered above the exact range (`2^3 ..= 2^63`).
const OCTAVES: usize = 61;

/// Total number of buckets.
pub const NUM_BUCKETS: usize = EXACT as usize + OCTAVES * SUBS;

/// A fixed-memory log-linear histogram of `u64` observations.
///
/// Typical use is latency in milliseconds: `record` each observation,
/// `quantile` to read p50/p99/p999, `merge` to combine shards.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("total", &self.total)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// The bucket index an observation falls into.
fn bucket_index(value: u64) -> usize {
    if value < EXACT {
        value as usize
    } else {
        let octave = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (octave - 3)) - EXACT) as usize;
        EXACT as usize + (octave - 3) * SUBS + sub
    }
}

/// The largest value that falls into `bucket` (inclusive upper bound).
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < EXACT as usize {
        bucket as u64
    } else {
        let idx = bucket - EXACT as usize;
        let octave = idx / SUBS + 3;
        let sub = (idx % SUBS) as u64;
        let upper = ((EXACT + sub + 1) as u128) << (octave - 3);
        u64::try_from(upper - 1).unwrap_or(u64::MAX)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the inclusive
    /// upper bound of the bucket holding that rank (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(bucket_upper(bucket).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (p50) observation.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th-percentile observation.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile observation.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Adds every bucket of `other` into `self` (shard merge).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs — the sparse
    /// form the cluster wire protocol ships.
    pub fn sparse_buckets(&self) -> Vec<(u16, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u16, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse form plus the carried extremes.
    ///
    /// Out-of-range bucket indices are clamped into the top bucket so a
    /// malformed frame cannot panic the decoder.
    pub fn from_sparse(buckets: &[(u16, u64)], sum: u64, max: u64) -> Self {
        let mut h = LogHistogram::new();
        for &(bucket, count) in buckets {
            let idx = (bucket as usize).min(NUM_BUCKETS - 1);
            h.counts[idx] += count;
            h.total += count;
        }
        h.sum = sum;
        h.max = max;
        h
    }

    /// The cumulative bucket view Prometheus exposition needs: one
    /// `(inclusive_upper_bound, cumulative_count)` pair per non-empty
    /// bucket, in increasing bound order (the `+Inf` series is implied by
    /// [`LogHistogram::total`]).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut cumulative = 0u64;
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count != 0)
            .map(|(bucket, &count)| {
                cumulative += count;
                (bucket_upper(bucket), cumulative)
            })
            .collect()
    }

    /// Renders the histogram as Prometheus exposition lines for the metric
    /// `name` (cumulative `_bucket{le=...}` series plus `_sum`/`_count`),
    /// emitting only the non-empty buckets and the closing `+Inf` series.
    pub fn prometheus_text(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# TYPE {name} histogram\n"));
        for (upper, cumulative) in self.cumulative_buckets() {
            out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", self.total));
        out.push_str(&format!("{name}_sum {}\n", self.sum));
        out.push_str(&format!("{name}_count {}\n", self.total));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_and_cover_u64() {
        let mut prev_upper = None;
        for b in 0..NUM_BUCKETS {
            let upper = bucket_upper(b);
            if let Some(p) = prev_upper {
                assert!(upper > p, "bucket {b} upper {upper} <= previous {p}");
            }
            prev_upper = Some(upper);
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, u64::MAX] {
            let b = bucket_index(v);
            assert!(b < NUM_BUCKETS);
            assert!(bucket_upper(b) >= v, "value {v} above its bucket upper");
        }
    }

    #[test]
    fn exact_values_round_trip_below_eight() {
        let mut h = LogHistogram::new();
        for v in 0..8 {
            h.record(v);
        }
        for q in [0.01, 0.5, 1.0] {
            assert!(h.quantile(q).unwrap() < 8);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(7));
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50().unwrap() as f64;
        let p99 = h.p99().unwrap() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.13, "p50 {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.13, "p99 {p99}");
        assert_eq!(h.total(), 10_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in 0..1_000u64 {
            a.record(v * 3);
            b.record(v * 7 + 1);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), a.total() + b.total());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.max(), a.max().max(b.max()));
        // Merging must commute.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(merged, other);
    }

    #[test]
    fn sparse_round_trip_preserves_the_histogram() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 12, 90, 4_096, 1 << 40] {
            for _ in 0..3 {
                h.record(v);
            }
        }
        let rebuilt = LogHistogram::from_sparse(&h.sparse_buckets(), h.sum(), h.max());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn sparse_decode_clamps_out_of_range_buckets() {
        let h = LogHistogram::from_sparse(&[(u16::MAX, 2)], 10, 5);
        assert_eq!(h.total(), 2);
        assert_eq!(h.quantile(1.0), Some(5));
    }

    #[test]
    fn prometheus_text_is_cumulative() {
        let mut h = LogHistogram::new();
        h.record(1);
        h.record(1);
        h.record(100);
        let text = h.prometheus_text("q_ms");
        assert!(text.contains("# TYPE q_ms histogram"));
        assert!(text.contains("q_ms_bucket{le=\"1\"} 2"));
        assert!(text.contains("q_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("q_ms_count 3"));
        assert!(text.contains("q_ms_sum 102"));
    }
}
