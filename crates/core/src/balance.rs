//! Load-balance quality metric.
//!
//! Section 4.4 evaluates the decentralized construction by comparing the
//! resulting distribution of peers over key space partitions
//! `(π'_i, n'_i)` with the distribution `(π_i, n_i)` produced by the global
//! reference partitioner (Algorithm 1), which is treated as optimal.  The
//! metric is the root-mean-square difference of per-partition peer counts,
//! normalised by the average reference replication, so a value of e.g. `0.4`
//! means the typical partition deviates from its optimal replica count by
//! 40% of the average replication factor.
//!
//! The decentralized trie does not necessarily have the same leaves as the
//! reference trie, so peer counts are compared *on the reference leaves*:
//! a peer whose path is deeper than a reference leaf counts fully towards
//! the leaf that covers it; a peer whose path is shorter (it is responsible
//! for a super-partition) contributes to each covered reference leaf in
//! proportion to the leaf's share of the peer's partition.

use crate::path::Path;
use crate::reference::ReferencePartitioning;

/// Per-leaf comparison between the reference partitioning and an observed
/// peer placement.
#[derive(Clone, Debug)]
pub struct LeafComparison {
    /// Reference leaf path.
    pub path: Path,
    /// Peers the reference assigns to this leaf (fractional).
    pub reference_peers: f64,
    /// Peers the observed placement effectively assigns to this leaf.
    pub observed_peers: f64,
}

/// Result of comparing an observed peer placement against the reference.
#[derive(Clone, Debug)]
pub struct BalanceReport {
    /// Per-leaf details (in canonical key order).
    pub leaves: Vec<LeafComparison>,
    /// Normalised RMS deviation (the paper's load-balance quality measure;
    /// lower is better, `0` is a perfect match).
    pub deviation: f64,
    /// Mean reference replication factor used for normalisation.
    pub mean_replication: f64,
}

/// Computes the observed peer count on each reference leaf and the
/// normalised RMS deviation.
///
/// `peer_paths` are the final paths of all peers produced by the
/// decentralized construction.
pub fn compare_to_reference(
    reference: &ReferencePartitioning,
    peer_paths: &[Path],
) -> BalanceReport {
    let mut leaves: Vec<LeafComparison> = reference
        .leaves
        .iter()
        .map(|l| LeafComparison {
            path: l.path,
            reference_peers: l.peers,
            observed_peers: 0.0,
        })
        .collect();

    for peer in peer_paths {
        for leaf in leaves.iter_mut() {
            if leaf.path.is_prefix_of(peer) {
                // Peer is at or below the reference leaf: full contribution.
                leaf.observed_peers += 1.0;
            } else if peer.is_prefix_of(&leaf.path) {
                // Peer is responsible for a super-partition of the leaf: its
                // capacity is spread uniformly over the leaf's share.
                leaf.observed_peers += 2f64.powi(-((leaf.path.len() - peer.len()) as i32));
            }
        }
    }

    let k = leaves.len().max(1) as f64;
    let mean_replication = reference.total_peers() / k;
    let ssq: f64 = leaves
        .iter()
        .map(|l| (l.reference_peers - l.observed_peers).powi(2))
        .sum();
    let deviation = if mean_replication > 0.0 {
        (ssq / k).sqrt() / mean_replication
    } else {
        0.0
    };

    BalanceReport {
        leaves,
        deviation,
        mean_replication,
    }
}

/// Storage-balance statistics over a set of peers: per-peer responsible
/// load, useful for checking the `delta_max` criterion directly.
#[derive(Clone, Debug, Default)]
pub struct StorageStats {
    /// Minimum per-peer load.
    pub min: usize,
    /// Maximum per-peer load.
    pub max: usize,
    /// Mean per-peer load.
    pub mean: f64,
    /// Coefficient of variation (std/mean) of per-peer load.
    pub cv: f64,
}

/// Computes storage statistics from per-peer responsible loads.
pub fn storage_stats(loads: &[usize]) -> StorageStats {
    if loads.is_empty() {
        return StorageStats::default();
    }
    let n = loads.len() as f64;
    let mean = loads.iter().sum::<usize>() as f64 / n;
    let var = loads
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    StorageStats {
        min: *loads.iter().min().unwrap(),
        max: *loads.iter().max().unwrap(),
        mean,
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::reference::{BalanceParams, ReferencePartitioning};

    fn uniform_reference(n_keys: usize, n_peers: usize) -> ReferencePartitioning {
        let keys: Vec<Key> = (0..n_keys)
            .map(|i| Key::from_fraction((i as f64 + 0.5) / n_keys as f64))
            .collect();
        ReferencePartitioning::compute(&keys, n_peers, BalanceParams::new(n_keys / 4, 2))
    }

    #[test]
    fn perfect_placement_has_zero_deviation() {
        let reference = uniform_reference(400, 16);
        // Place exactly the reference number of peers (they are integral for
        // a perfectly uniform distribution) on every leaf.
        let mut peers = Vec::new();
        for leaf in &reference.leaves {
            for _ in 0..leaf.peers.round() as usize {
                peers.push(leaf.path);
            }
        }
        let report = compare_to_reference(&reference, &peers);
        assert!(report.deviation < 1e-9, "deviation {}", report.deviation);
    }

    #[test]
    fn missing_peers_increase_deviation() {
        let reference = uniform_reference(400, 16);
        // Pile every peer onto the first leaf.
        let first = reference.leaves[0].path;
        let peers = vec![first; 16];
        let report = compare_to_reference(&reference, &peers);
        assert!(report.deviation > 0.5, "deviation {}", report.deviation);
    }

    #[test]
    fn shallow_peers_contribute_fractionally() {
        let reference = uniform_reference(400, 16);
        // All peers still at the root: each contributes 1/K to every leaf.
        let peers = vec![Path::root(); 16];
        let report = compare_to_reference(&reference, &peers);
        let k = reference.leaves.len() as f64;
        for leaf in &report.leaves {
            assert!((leaf.observed_peers - 16.0 / k).abs() < 1e-9);
        }
        // Uniform reference assigns 16/K per leaf as well, so deviation is 0:
        // the root placement covers uniform data perfectly (it just has not
        // specialised yet).
        assert!(report.deviation < 1e-9);
    }

    #[test]
    fn deviation_is_scale_free_in_replication() {
        // Doubling both the reference peers and the observed peers should
        // leave the normalised deviation unchanged.
        let reference_small = uniform_reference(400, 16);
        let reference_big = uniform_reference(400, 32);
        let peers_small = vec![reference_small.leaves[0].path; 16];
        let peers_big = vec![reference_big.leaves[0].path; 32];
        let d_small = compare_to_reference(&reference_small, &peers_small).deviation;
        let d_big = compare_to_reference(&reference_big, &peers_big).deviation;
        assert!((d_small - d_big).abs() < 0.05);
    }

    #[test]
    fn storage_stats_basics() {
        let stats = storage_stats(&[10, 10, 10, 10]);
        assert_eq!(stats.min, 10);
        assert_eq!(stats.max, 10);
        assert!((stats.mean - 10.0).abs() < 1e-12);
        assert!(stats.cv.abs() < 1e-12);
        let skewed = storage_stats(&[0, 0, 0, 40]);
        assert!(skewed.cv > 1.0);
        let empty = storage_stats(&[]);
        assert_eq!(empty.max, 0);
    }
}
