//! Data keys of the overlay.
//!
//! The paper assumes data keys are taken from the key space `[0, 1)`
//! (Section 2.1).  We represent a key as a 64-bit fixed-point fraction:
//! `Key(raw)` denotes the real value `raw / 2^64`.  This gives an exact,
//! totally ordered representation whose binary expansion is directly the
//! sequence of trie bits used by prefix routing, which keeps the trie logic
//! free of floating point edge cases while still being convertible from and
//! to `f64` for workload generators.

use std::fmt;

/// A data key in the key space `[0, 1)`, stored as a 64-bit fixed-point
/// fraction (`value = raw / 2^64`).
///
/// The most significant bit of `raw` is the first trie bit (`0` = left half
/// of the key space, `1` = right half), the next bit selects the quarter,
/// and so on.  Order on `Key` is identical to the numeric order of the
/// represented fractions, so order-preserving indexing (range queries over
/// the original attribute domain) is preserved by construction.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u64);

impl Key {
    /// The smallest key, `0.0`.
    pub const MIN: Key = Key(0);
    /// The largest representable key, `1 - 2^-64`.
    pub const MAX: Key = Key(u64::MAX);

    /// Number of addressable bits in a key.
    pub const BITS: usize = 64;

    /// Creates a key from a fraction in `[0, 1)`.
    ///
    /// Values below `0.0` are clamped to `0.0` and values at or above `1.0`
    /// are clamped to the largest representable key.  `NaN` maps to `0.0`.
    pub fn from_fraction(x: f64) -> Key {
        if x.is_nan() || x <= 0.0 {
            return Key::MIN;
        }
        if x >= 1.0 {
            return Key::MAX;
        }
        // 2^64 as f64; the multiplication may round up to exactly 2^64 for
        // values extremely close to 1.0, so saturate.
        let scaled = x * 18_446_744_073_709_551_616.0;
        if scaled >= 18_446_744_073_709_551_616.0 {
            Key::MAX
        } else {
            Key(scaled as u64)
        }
    }

    /// Returns the key as a fraction in `[0, 1)`.
    pub fn as_fraction(self) -> f64 {
        self.0 as f64 / 18_446_744_073_709_551_616.0
    }

    /// Returns bit `i` of the key (bit 0 is the most significant bit, i.e.
    /// the first trie level).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Key::BITS`.
    #[inline]
    pub fn bit(self, i: usize) -> bool {
        assert!(i < Self::BITS, "bit index {i} out of range");
        (self.0 >> (Self::BITS - 1 - i)) & 1 == 1
    }

    /// Builds a key from a textual identifier by mapping its first bytes
    /// into the key space in lexicographic order.
    ///
    /// This is the order-preserving mapping used for the inverted-file /
    /// information-retrieval scenario of the paper: lexicographically
    /// adjacent terms map to numerically adjacent keys, so prefix and range
    /// queries over terms become key-range queries in the overlay.
    pub fn from_str_ordered(s: &str) -> Key {
        let mut raw: u64 = 0;
        let bytes = s.as_bytes();
        for i in 0..8 {
            raw <<= 8;
            if i < bytes.len() {
                raw |= bytes[i] as u64;
            }
        }
        Key(raw)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:.6})", self.as_fraction())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_fraction())
    }
}

impl From<f64> for Key {
    fn from(x: f64) -> Self {
        Key::from_fraction(x)
    }
}

/// Identifier of a data item (e.g. a document holding the indexed term).
///
/// The overlay indexes `(Key, DataId)` pairs; the `DataId` is opaque payload
/// from the overlay's point of view.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct DataId(pub u64);

/// A single indexed entry: a key together with the identifier of the data
/// item it refers to (a posting in the inverted-file use case).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataEntry {
    /// The indexing key in `[0, 1)`.
    pub key: Key,
    /// The referenced data item.
    pub id: DataId,
}

impl DataEntry {
    /// Convenience constructor.
    pub fn new(key: Key, id: DataId) -> Self {
        DataEntry { key, id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_roundtrip_is_close() {
        for &x in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.999999, 0.33333333] {
            let k = Key::from_fraction(x);
            assert!((k.as_fraction() - x).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn clamping_out_of_range() {
        assert_eq!(Key::from_fraction(-0.5), Key::MIN);
        assert_eq!(Key::from_fraction(1.0), Key::MAX);
        assert_eq!(Key::from_fraction(2.0), Key::MAX);
        assert_eq!(Key::from_fraction(f64::NAN), Key::MIN);
    }

    #[test]
    fn bits_follow_binary_expansion() {
        // 0.5 = 0.1000...b
        let half = Key::from_fraction(0.5);
        assert!(half.bit(0));
        assert!(!half.bit(1));
        // 0.25 = 0.01b
        let quarter = Key::from_fraction(0.25);
        assert!(!quarter.bit(0));
        assert!(quarter.bit(1));
        assert!(!quarter.bit(2));
        // 0.75 = 0.11b
        let threequarter = Key::from_fraction(0.75);
        assert!(threequarter.bit(0));
        assert!(threequarter.bit(1));
    }

    #[test]
    fn ordering_matches_fractions() {
        let a = Key::from_fraction(0.2);
        let b = Key::from_fraction(0.4);
        let c = Key::from_fraction(0.400001);
        assert!(a < b && b < c);
    }

    #[test]
    fn string_mapping_is_order_preserving() {
        let apple = Key::from_str_ordered("apple");
        let banana = Key::from_str_ordered("banana");
        let bananas = Key::from_str_ordered("bananas");
        let cherry = Key::from_str_ordered("cherry");
        assert!(apple < banana);
        assert!(banana < bananas);
        assert!(bananas < cherry);
    }

    #[test]
    #[should_panic]
    fn bit_out_of_range_panics() {
        Key::MIN.bit(64);
    }
}
