//! The bilateral split/replicate/refer exchange engine (Figure 2 +
//! Section 4.2).
//!
//! Both execution models of this repository — the whole-system simulator
//! (`pgrid-sim`) and the message-level deployment runtime (`pgrid-net`) —
//! run the *same* construction protocol: when two peers meet, they locally
//! assess their shared partition from their stores alone, derive the
//! adaptive decision probabilities of Section 3 from that assessment, and
//! then either **split** the partition, become **replicas**, **refer** the
//! initiator to a better-matching peer, or do **nothing**.  This module is
//! the single implementation of that protocol core; the two runtimes only
//! differ in transport (direct state access versus encoded messages over an
//! emulated wide-area network).
//!
//! The pipeline is:
//!
//! 1. [`ExchangeEngine::assess`] — capture–recapture estimation of the
//!    partition's distinct keys, replica count and lower-half load ratio
//!    from the two peers' partition-restricted stores;
//! 2. [`ExchangeEngine::probabilities`] — the strategy's effective decision
//!    probabilities evaluated at the assessed ratio (with the balanced-split
//!    floor [`MIN_BALANCED_SPLIT_PROBABILITY`] applied);
//! 3. [`ExchangeEngine::decide`] — one random draw turning assessment and
//!    probabilities into an [`ExchangeDecision`];
//! 4. [`apply_decision`] — the state transition of that decision on two
//!    [`PeerState`]s (the simulator applies it directly; the deployment
//!    runtime serialises the equivalent transition into its wire protocol).

use crate::key::DataEntry;
use crate::path::{Path, MAX_PATH_LEN};
use crate::peer::PeerState;
use crate::reference::BalanceParams;
use crate::routing::RoutingEntry;
use crate::store::StoreRead;
use pgrid_partition::probabilities::{
    corrected_effective, effective_probabilities, heuristic_effective,
};
use rand::Rng;

/// Lower bound on the balanced-split probability.
///
/// For extremely skewed partitions the theoretical balanced-split
/// probability becomes vanishingly small and the first split of a partition
/// would take an unbounded number of encounters.  Both runtimes floor it at
/// this constant; the resulting slight over-provisioning of nearly empty
/// partitions is the "dispersion" effect the paper acknowledges for very
/// skewed distributions (Section 2.2).
pub const MIN_BALANCED_SPLIT_PROBABILITY: f64 = 0.02;

/// Which probability functions the construction uses for its split
/// decisions — the knob behind the "theory vs. heuristics" experiment
/// (Figure 6d) and the corrected-probability ablation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProbabilityStrategy {
    /// Exact AEP probabilities.
    Aep,
    /// Sampling-bias corrected AEP probabilities.
    AepCorrected,
    /// The heuristic probability functions of Figure 6d.
    Heuristic,
}

/// Local estimate of a partition's state, computed from the two interacting
/// peers' stores only (Section 4.2).
///
/// The number of distinct keys in the partition is estimated by
/// capture–recapture over the two stores: if the partition holds `D` keys
/// and the peers hold `|K1|` and `|K2|` of them, the expected overlap is
/// `|K1| |K2| / D`, so `D̂ = |K1| |K2| / |K1 ∩ K2|` (never below the
/// observed union).  The equivalent replica-count estimate is
/// `m̂ = n_min D̂ / delta_max` — the paper's worked example ("two identical
/// stores of size delta_max imply n_min replicas") — and the partition is
/// split while `D̂ > delta_max` and `m̂ >= 2 n_min`, mirroring lines 1–2 of
/// the global `Partition` algorithm.  Unlike a naive overlap-only replica
/// count, this estimate is robust against the store growth caused by
/// anti-entropy reconciliation and key shipments during construction.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Assessment {
    /// Whether the partition must be split (storage bound exceeded, enough
    /// replicas, and actually splittable by bisection).
    pub overloaded: bool,
    /// Whether a bisection can separate the observed keys at all.  A
    /// partition whose observed entries all share a single key value (e.g.
    /// the postings of one very popular index term) can never be balanced by
    /// bisection at any depth, so it is left alone regardless of its size.
    pub splittable: bool,
    /// Capture–recapture estimate of the distinct keys in the partition.
    pub estimated_keys: f64,
    /// Estimated number of replica peers of the partition.
    pub estimated_replicas: f64,
    /// Estimated fraction of the partition's load in its lower half
    /// (the `p̂` of Section 3.2).
    pub p_lower: f64,
    /// Number of local keys behind the ratio estimate (used to pick the
    /// correction grid of the corrected strategy).
    pub samples: usize,
}

/// Effective decision probabilities for one encounter, evaluated at the
/// assessed load ratio.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DecisionProbabilities {
    /// Probability of a balanced split when two undecided peers meet
    /// (already floored at [`MIN_BALANCED_SPLIT_PROBABILITY`]).
    pub alpha: f64,
    /// Probability of deciding for side `0` when meeting a peer decided for
    /// side `1`.
    pub q0: f64,
    /// Probability of deciding for side `1` when meeting a peer decided for
    /// side `0`.
    pub q1: f64,
}

/// The outcome of the bilateral decision of Figure 2.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExchangeDecision {
    /// Extend paths at `partition`: the undecided (lagging) peer takes
    /// `bit`.  When `balanced`, two peers of the same level split together
    /// and the partner simultaneously takes `!bit`; otherwise the lagging
    /// peer catches up with a partner that already decided at this level.
    Split {
        /// The partition being split (the lagging peer's current path).
        partition: Path,
        /// The side the lagging peer takes.
        bit: bool,
        /// Whether this is a balanced two-peer split (as opposed to a
        /// one-sided catch-up).
        balanced: bool,
    },
    /// Same partition, not overloaded: become mutual replicas and reconcile
    /// contents.
    Replicate,
    /// The peers belong to different partitions: refer the initiator to a
    /// routing reference at the divergence level.
    Refer {
        /// The level (common prefix length) at which the paths diverge.
        level: usize,
    },
    /// No state change (e.g. an overloaded partition whose balanced-split
    /// roll failed — the fruitless interaction of Section 4.2).
    Nothing,
}

/// What [`apply_decision`] did to the two peers.
#[derive(Clone, Debug, Default)]
pub struct ApplyOutcome {
    /// Data entries moved between peers (split handovers + reconciliation).
    pub keys_moved: usize,
    /// Path extensions performed (2 for a balanced split, 1 for a catch-up).
    pub splits: usize,
    /// Replication relationships established or refreshed.
    pub replications: usize,
    /// Whether anything useful happened (the progress signal that resets
    /// the fruitless-interaction back-off of Section 4.2).
    pub useful: bool,
    /// Entries that must be delivered to a third peer: in a same-side
    /// catch-up the keys of the complementary subtree belong to the routing
    /// reference, not to either interacting peer.
    pub forwarded: Option<(RoutingEntry, Vec<DataEntry>)>,
}

/// Running totals over many [`ApplyOutcome`]s.
///
/// Concurrent executors (the parallel simulator's batch workers, or any
/// future multi-threaded runtime) accumulate one tally per worker and merge
/// them afterwards; since every field is a plain sum, the merged result is
/// independent of how outcomes were distributed over workers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExchangeTally {
    /// Path extensions performed.
    pub splits: usize,
    /// Replication relationships established or refreshed.
    pub replications: usize,
    /// Data entries moved between peers.
    pub keys_moved: usize,
    /// Outcomes that reported useful progress.
    pub useful: usize,
}

impl ExchangeTally {
    /// Adds one outcome to the tally.
    pub fn record(&mut self, outcome: &ApplyOutcome) {
        self.splits += outcome.splits;
        self.replications += outcome.replications;
        self.keys_moved += outcome.keys_moved;
        self.useful += usize::from(outcome.useful);
    }

    /// Adds another tally (e.g. one worker's delta) to this one.
    pub fn merge(&mut self, other: &ExchangeTally) {
        self.splits += other.splits;
        self.replications += other.replications;
        self.keys_moved += other.keys_moved;
        self.useful += other.useful;
    }
}

/// The shared protocol core: balance parameters plus probability strategy.
///
/// The engine itself is stateless — randomness is injected per call — so a
/// single instance can serve any number of concurrent encounters.
#[derive(Copy, Clone, Debug)]
pub struct ExchangeEngine {
    params: BalanceParams,
    strategy: ProbabilityStrategy,
}

impl ExchangeEngine {
    /// An engine using the exact AEP probabilities.
    pub fn new(params: BalanceParams) -> ExchangeEngine {
        ExchangeEngine::with_strategy(params, ProbabilityStrategy::Aep)
    }

    /// An engine using the given probability strategy.
    pub fn with_strategy(params: BalanceParams, strategy: ProbabilityStrategy) -> ExchangeEngine {
        ExchangeEngine { params, strategy }
    }

    /// The balance parameters in effect.
    pub fn params(&self) -> &BalanceParams {
        &self.params
    }

    /// The probability strategy in effect.
    pub fn strategy(&self) -> ProbabilityStrategy {
        self.strategy
    }

    /// `Some(level)` when the two paths belong to different partitions, so
    /// the encounter can only be a referral at `level`; `None` when the
    /// bilateral decision of [`ExchangeEngine::decide`] applies.
    pub fn refer_level(path_a: &Path, path_b: &Path) -> Option<usize> {
        if path_a.is_prefix_of(path_b) || path_b.is_prefix_of(path_a) {
            None
        } else {
            Some(path_a.common_prefix_len(path_b))
        }
    }

    /// Assesses the shared `partition` from the two peers' stores, which
    /// must already be restricted to `partition` (see
    /// [`crate::store::KeyStore::restricted`]).
    ///
    /// Accepts any [`StoreRead`] — an owned `KeyStore` or the zero-copy
    /// [`crate::store::RestrictedView`] both runtimes assess through — and
    /// produces identical numbers for identical entry sets either way.
    pub fn assess(&self, a: &impl StoreRead, b: &impl StoreRead, partition: &Path) -> Assessment {
        let count_a = a.len();
        let count_b = b.len();
        let overlap = a.intersection_size_with(b);
        let union = count_a + count_b - overlap;

        // Capture–recapture estimate of the distinct keys in the partition.
        let estimated_keys = if count_a == 0 || count_b == 0 {
            union as f64
        } else if overlap == 0 {
            // No overlap carries no upper bound on D; treat as "much larger
            // than what we can see".
            (union as f64) * 4.0
        } else {
            ((count_a as f64 * count_b as f64) / overlap as f64).max(union as f64)
        };
        let estimated_replicas =
            self.params.n_min as f64 * estimated_keys / self.params.delta_max as f64;

        // Load ratio of the lower half, estimated from the union of both
        // stores restricted to the partition (the "sample" of Section 3.2 —
        // its size is bounded by delta_max via the storage balancing itself).
        let lower = partition.child(false);
        let in_lower = a.count_in(&lower) + b.count_in(&lower);
        let total = count_a + count_b;
        let p_lower = if total == 0 {
            0.5
        } else {
            (in_lower as f64 / total as f64).clamp(1e-3, 1.0 - 1e-3)
        };

        let splittable = match (a.key_span_in(partition), b.key_span_in(partition)) {
            (Some((lo_a, hi_a)), Some((lo_b, hi_b))) => lo_a.min(lo_b) != hi_a.max(hi_b),
            (Some((lo, hi)), None) | (None, Some((lo, hi))) => lo != hi,
            (None, None) => false,
        };

        Assessment {
            overloaded: splittable
                && estimated_keys > self.params.delta_max as f64
                && estimated_replicas >= 2.0 * self.params.n_min as f64,
            splittable,
            estimated_keys,
            estimated_replicas,
            p_lower,
            samples: total.max(1),
        }
    }

    /// The strategy's effective decision probabilities at the assessed load
    /// ratio, with the balanced-split floor applied to `alpha`.
    pub fn probabilities(&self, assessment: &Assessment) -> DecisionProbabilities {
        let (alpha, q0, q1) = match self.strategy {
            ProbabilityStrategy::Aep => effective_probabilities(assessment.p_lower),
            ProbabilityStrategy::Heuristic => heuristic_effective(assessment.p_lower),
            ProbabilityStrategy::AepCorrected => {
                // Bucket the sample size so the correction grids are reused
                // across interactions instead of being recomputed for every
                // distinct store size.
                let bucket = [5usize, 10, 20, 40, 80]
                    .into_iter()
                    .min_by_key(|&b| b.abs_diff(assessment.samples))
                    .unwrap_or(10);
                corrected_effective(assessment.p_lower, bucket)
            }
        };
        DecisionProbabilities {
            alpha: alpha.max(MIN_BALANCED_SPLIT_PROBABILITY),
            q0,
            q1,
        }
    }

    /// Whether a peer's own store alone gives it reason to keep pushing for
    /// a split of its partition: clearly more keys than the storage bound,
    /// spread over both halves.  Used by the back-off rules of both
    /// runtimes (a peer with local evidence never goes dormant).
    pub fn locally_overloaded(&self, peer: &PeerState) -> bool {
        if peer.responsible_load() < 2 * self.params.delta_max {
            return false;
        }
        matches!(peer.store.key_span_in(&peer.path), Some((lo, hi)) if lo != hi)
    }

    /// The bilateral decision of Figure 2 for one encounter.
    ///
    /// `lagging_path` is the path of the peer the decision is *for* — the
    /// one whose path is no longer than the partner's (`ahead_path`).  The
    /// `assessment` must come from [`ExchangeEngine::assess`] over the
    /// partition `lagging_path`.  One encounter consumes at most two random
    /// draws from `rng`.
    pub fn decide<R: Rng + ?Sized>(
        &self,
        lagging_path: Path,
        ahead_path: Path,
        assessment: &Assessment,
        rng: &mut R,
    ) -> ExchangeDecision {
        if let Some(level) = ExchangeEngine::refer_level(&lagging_path, &ahead_path) {
            return ExchangeDecision::Refer { level };
        }
        debug_assert!(
            lagging_path.len() <= ahead_path.len(),
            "decide() must be called with the shallower path first"
        );
        let partition = lagging_path;

        if lagging_path == ahead_path {
            // Two undecided peers of the same partition: balanced split with
            // the (floored) probability alpha, replicas otherwise.
            if assessment.overloaded && partition.len() < MAX_PATH_LEN {
                let probabilities = self.probabilities(assessment);
                if rng.gen_bool(probabilities.alpha.clamp(0.0, 1.0)) {
                    // One peer takes each side, uniformly at random, as the
                    // analysis of Section 3 assumes.
                    let bit = rng.gen_bool(0.5);
                    return ExchangeDecision::Split {
                        partition,
                        bit,
                        balanced: true,
                    };
                }
                return ExchangeDecision::Nothing;
            }
            return ExchangeDecision::Replicate;
        }

        // The lagging peer meets a peer that has already decided at the
        // lagging peer's level: the AEP decided-peer rules (cases 3/4 of the
        // algorithm in Section 3.1).  The partition was split by others, so
        // it must have been overloaded; still verify from local information
        // to avoid splitting partitions that were split by mistake and to
        // keep the storage criterion in charge.
        if !assessment.overloaded {
            return ExchangeDecision::Nothing;
        }
        let probabilities = self.probabilities(assessment);
        let ahead_bit = ahead_path.bit(partition.len());
        let opposite_probability = if ahead_bit {
            probabilities.q0
        } else {
            probabilities.q1
        };
        let bit = if rng.gen_bool(opposite_probability.clamp(0.0, 1.0)) {
            !ahead_bit
        } else {
            ahead_bit
        };
        ExchangeDecision::Split {
            partition,
            bit,
            balanced: false,
        }
    }
}

/// Applies `decision` to the two peers of a local interaction.
///
/// `peer` is the peer the decision was made for (the lagging/undecided
/// one), `partner` the other party.  A same-side catch-up split needs a
/// routing reference to the complementary subtree, supplied as `complement`
/// (typically drawn from the partner's routing table at the partition's
/// level); without one the split cannot be completed and the interaction is
/// reported as fruitless, exactly as in both original engines.
///
/// [`ExchangeDecision::Refer`] is transport-specific (who is referred to
/// whom depends on the runtime's routing tables and messaging) and is a
/// no-op here.
pub fn apply_decision<R: Rng + ?Sized>(
    decision: &ExchangeDecision,
    peer: &mut PeerState,
    partner: &mut PeerState,
    complement: Option<RoutingEntry>,
    rng: &mut R,
) -> ApplyOutcome {
    let mut outcome = ApplyOutcome::default();
    match *decision {
        ExchangeDecision::Nothing | ExchangeDecision::Refer { .. } => {}
        ExchangeDecision::Replicate => {
            let reconciled = crate::replication::reconcile(&mut peer.store, &mut partner.store);
            outcome.keys_moved += reconciled.total_transferred();
            outcome.replications = 1;
            if !peer.replicas.contains(&partner.id) {
                peer.replicas.push(partner.id);
            }
            if !partner.replicas.contains(&peer.id) {
                partner.replicas.push(peer.id);
            }
            // Fully synchronised copies teach nothing — the termination
            // signal of Section 4.2.
            outcome.useful = outcome.keys_moved > 0;
        }
        ExchangeDecision::Split {
            partition,
            bit,
            balanced: true,
        } => {
            let peer_id = peer.id;
            let partner_id = partner.id;
            let shipped_to_partner = peer.split_towards(
                bit,
                RoutingEntry {
                    peer: partner_id,
                    path: partition.child(!bit),
                },
                rng,
            );
            let shipped_to_peer = partner.split_towards(
                !bit,
                RoutingEntry {
                    peer: peer_id,
                    path: partition.child(bit),
                },
                rng,
            );
            outcome.keys_moved += shipped_to_partner.len() + shipped_to_peer.len();
            partner.store.merge_batch(shipped_to_partner);
            peer.store.merge_batch(shipped_to_peer);
            outcome.splits = 2;
            outcome.useful = true;
        }
        ExchangeDecision::Split {
            partition,
            bit,
            balanced: false,
        } => {
            let ahead_bit = partner.path.bit(partition.len());
            let reference = if bit != ahead_bit {
                // Taking the opposite side: the partner itself is the
                // reference for the complementary subtree.
                RoutingEntry {
                    peer: partner.id,
                    path: partner.path,
                }
            } else {
                match complement {
                    Some(reference) => reference,
                    // No reference for the complementary side available:
                    // the split cannot be completed (fruitless).
                    None => return outcome,
                }
            };
            let shipped = peer.split_towards(bit, reference, rng);
            outcome.splits = 1;
            outcome.keys_moved += shipped.len();
            if reference.peer == partner.id {
                partner.store.merge_batch(shipped);
            } else {
                outcome.forwarded = Some((reference, shipped));
            }
            // Joining the partner's side: reconcile so replicas converge
            // quickly.
            if bit == ahead_bit && peer.path == partner.path {
                let reconciled = crate::replication::reconcile(&mut peer.store, &mut partner.store);
                outcome.keys_moved += reconciled.total_transferred();
                if !peer.replicas.contains(&partner.id) {
                    peer.replicas.push(partner.id);
                }
                if !partner.replicas.contains(&peer.id) {
                    partner.replicas.push(peer.id);
                }
            }
            outcome.useful = true;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{DataId, Key};
    use crate::routing::PeerId;
    use crate::store::KeyStore;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store(fracs: &[f64], id_base: u64) -> KeyStore {
        KeyStore::from_entries(
            fracs
                .iter()
                .enumerate()
                .map(|(i, &x)| DataEntry::new(Key::from_fraction(x), DataId(id_base + i as u64))),
        )
    }

    fn peer_with(id: u64, path: &str, fracs: &[f64], id_base: u64) -> PeerState {
        let mut p = PeerState::with_entries(
            PeerId(id),
            4,
            fracs
                .iter()
                .enumerate()
                .map(|(i, &x)| DataEntry::new(Key::from_fraction(x), DataId(id_base + i as u64))),
        );
        p.path = Path::parse(path);
        p
    }

    fn engine() -> ExchangeEngine {
        ExchangeEngine::new(BalanceParams::new(4, 2))
    }

    #[test]
    fn refer_level_detects_diverging_partitions() {
        assert_eq!(
            ExchangeEngine::refer_level(&Path::parse("01"), &Path::parse("00")),
            Some(1)
        );
        assert_eq!(
            ExchangeEngine::refer_level(&Path::parse("0"), &Path::parse("01")),
            None
        );
        assert_eq!(
            ExchangeEngine::refer_level(&Path::root(), &Path::parse("1")),
            None
        );
    }

    #[test]
    fn assessment_flags_an_overloaded_partition() {
        let e = engine();
        // Two disjoint-id, overlapping-key stores well above delta_max = 4.
        let shared: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let a = store(&shared, 0);
        let b = store(&shared, 0); // identical ids: full overlap
        let assessment = e.assess(&a, &b, &Path::root());
        assert!(assessment.splittable);
        assert!(assessment.overloaded);
        assert!(assessment.estimated_keys >= 10.0);
        assert!((assessment.p_lower - 0.5).abs() < 0.01);
        assert_eq!(assessment.samples, 20);
    }

    #[test]
    fn single_point_partitions_are_never_split() {
        let e = engine();
        let a = store(&[0.25; 20], 0);
        let b = store(&[0.25; 20], 100);
        let assessment = e.assess(&a, &b, &Path::root());
        assert!(!assessment.splittable);
        assert!(!assessment.overloaded);
    }

    #[test]
    fn empty_stores_assess_as_balanced_and_harmless() {
        let e = engine();
        let empty = KeyStore::new();
        let assessment = e.assess(&empty, &empty, &Path::root());
        assert!(!assessment.overloaded);
        assert_eq!(assessment.p_lower, 0.5);
        assert_eq!(assessment.samples, 1);
    }

    #[test]
    fn probabilities_are_floored_and_in_range() {
        let e = engine();
        // Extremely skewed partition: theoretical alpha underflows the floor.
        let fracs: Vec<f64> = (0..40).map(|i| 0.9 + i as f64 / 400.0).collect();
        let a = store(&fracs, 0);
        let b = store(&fracs, 0);
        let assessment = e.assess(&a, &b, &Path::root());
        let probabilities = e.probabilities(&assessment);
        assert!(probabilities.alpha >= MIN_BALANCED_SPLIT_PROBABILITY);
        assert!((0.0..=1.0).contains(&probabilities.q0));
        assert!((0.0..=1.0).contains(&probabilities.q1));
    }

    #[test]
    fn decide_replicates_when_not_overloaded() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(1);
        let a = store(&[0.1, 0.6], 0);
        let b = store(&[0.1, 0.6], 0);
        let assessment = e.assess(&a, &b, &Path::root());
        assert_eq!(
            e.decide(Path::root(), Path::root(), &assessment, &mut rng),
            ExchangeDecision::Replicate
        );
    }

    #[test]
    fn decide_refers_across_partitions() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(1);
        let assessment = e.assess(&KeyStore::new(), &KeyStore::new(), &Path::root());
        assert_eq!(
            e.decide(Path::parse("10"), Path::parse("11"), &assessment, &mut rng),
            ExchangeDecision::Refer { level: 1 }
        );
    }

    #[test]
    fn decide_eventually_splits_an_overloaded_partition() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(2);
        let shared: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
        let a = store(&shared, 0);
        let b = store(&shared, 0);
        let assessment = e.assess(&a, &b, &Path::root());
        assert!(assessment.overloaded);
        let mut split_seen = false;
        for _ in 0..64 {
            match e.decide(Path::root(), Path::root(), &assessment, &mut rng) {
                ExchangeDecision::Split {
                    partition,
                    balanced,
                    ..
                } => {
                    assert_eq!(partition, Path::root());
                    assert!(balanced);
                    split_seen = true;
                }
                ExchangeDecision::Nothing => {}
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert!(split_seen, "a balanced 50/50 partition must split quickly");
    }

    #[test]
    fn catch_up_takes_some_side_of_an_overloaded_partition() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(3);
        let shared: Vec<f64> = (0..12).map(|i| i as f64 / 12.0).collect();
        let a = store(&shared, 0);
        let b = store(&shared, 0);
        let assessment = e.assess(&a, &b, &Path::root());
        let decision = e.decide(Path::root(), Path::parse("0"), &assessment, &mut rng);
        match decision {
            ExchangeDecision::Split {
                partition,
                balanced,
                ..
            } => {
                assert_eq!(partition, Path::root());
                assert!(!balanced);
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn apply_balanced_split_partitions_the_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let fracs: Vec<f64> = (0..8).map(|i| i as f64 / 8.0).collect();
        let mut a = peer_with(1, "", &fracs, 0);
        let mut b = peer_with(2, "", &fracs, 0);
        let decision = ExchangeDecision::Split {
            partition: Path::root(),
            bit: false,
            balanced: true,
        };
        let outcome = apply_decision(&decision, &mut a, &mut b, None, &mut rng);
        assert!(outcome.useful);
        assert_eq!(outcome.splits, 2);
        assert_eq!(a.path, Path::parse("0"));
        assert_eq!(b.path, Path::parse("1"));
        assert!(a.store.iter().all(|e| a.path.covers(e.key)));
        assert!(b.store.iter().all(|e| b.path.covers(e.key)));
        assert!(a.invariants_hold() && b.invariants_hold());
    }

    #[test]
    fn apply_replicate_reconciles_and_registers_replicas() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = peer_with(1, "", &[0.1, 0.2], 0);
        let mut b = peer_with(2, "", &[0.3, 0.4], 100);
        let outcome = apply_decision(&ExchangeDecision::Replicate, &mut a, &mut b, None, &mut rng);
        assert!(outcome.useful);
        assert_eq!(outcome.replications, 1);
        assert_eq!(a.store.len(), 4);
        assert_eq!(b.store.len(), 4);
        assert!(a.replicas.contains(&b.id));
        assert!(b.replicas.contains(&a.id));
        // A second application transfers nothing and is fruitless.
        let again = apply_decision(&ExchangeDecision::Replicate, &mut a, &mut b, None, &mut rng);
        assert!(!again.useful);
    }

    #[test]
    fn apply_opposite_catch_up_ships_keys_to_the_partner() {
        let mut rng = StdRng::seed_from_u64(6);
        let fracs: Vec<f64> = (0..8).map(|i| i as f64 / 8.0).collect();
        let mut lagging = peer_with(1, "", &fracs, 0);
        let mut ahead = peer_with(2, "0", &fracs[..4], 100);
        // Partner decided for side 0; the lagging peer takes the opposite.
        let decision = ExchangeDecision::Split {
            partition: Path::root(),
            bit: true,
            balanced: false,
        };
        let outcome = apply_decision(&decision, &mut lagging, &mut ahead, None, &mut rng);
        assert!(outcome.useful);
        assert_eq!(outcome.splits, 1);
        assert!(outcome.forwarded.is_none());
        assert_eq!(lagging.path, Path::parse("1"));
        // The lower-half keys were handed to the ahead peer directly.
        assert!(lagging.store.iter().all(|e| lagging.path.covers(e.key)));
    }

    #[test]
    fn apply_same_side_catch_up_requires_and_uses_the_complement() {
        let mut rng = StdRng::seed_from_u64(7);
        let fracs: Vec<f64> = (0..8).map(|i| i as f64 / 8.0).collect();
        let decision = ExchangeDecision::Split {
            partition: Path::root(),
            bit: false,
            balanced: false,
        };

        // Without a complement reference the split cannot complete.
        let mut lagging = peer_with(1, "", &fracs, 0);
        let mut ahead = peer_with(2, "0", &fracs[..4], 100);
        let outcome = apply_decision(&decision, &mut lagging, &mut ahead, None, &mut rng);
        assert!(!outcome.useful);
        assert_eq!(lagging.path, Path::root(), "no split without a reference");

        // With one, the other side's keys are forwarded to the reference.
        let complement = RoutingEntry {
            peer: PeerId(9),
            path: Path::parse("1"),
        };
        let outcome = apply_decision(
            &decision,
            &mut lagging,
            &mut ahead,
            Some(complement),
            &mut rng,
        );
        assert!(outcome.useful);
        assert_eq!(lagging.path, Path::parse("0"));
        let (reference, entries) = outcome.forwarded.expect("keys go to the third peer");
        assert_eq!(reference.peer, PeerId(9));
        assert!(entries.iter().all(|e| Path::parse("1").covers(e.key)));
        // Same partition now: the peers reconciled and know each other.
        assert!(lagging.replicas.contains(&ahead.id));
        assert!(ahead.replicas.contains(&lagging.id));
    }
}
