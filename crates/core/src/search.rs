//! Prefix-routing search on the distributed trie.
//!
//! Search resolves a requested key bit by bit (Section 2.1): a peer that
//! cannot resolve the next bit locally forwards the request to a randomly
//! chosen routing reference for the complementary subtree at the level of
//! the first mismatching bit.  Because references are chosen uniformly at
//! random from the complementary subtree, the expected cost is
//! `O(log |leaves|)` messages irrespective of the trie shape.
//!
//! The search logic is written against the [`NetworkView`] trait so that the
//! same code drives the deterministic simulator, the threaded deployment
//! runtime and the unit tests.

use crate::key::{DataEntry, Key};
use crate::path::Path;
use crate::routing::PeerId;
use crate::store::KeyStore;
use rand::Rng;

/// Read access to the state of the peers reachable from a search.
///
/// Implementations decide how state is actually stored (a simulator array, a
/// map guarded by a lock, ...).  Offline peers must return `false` from
/// [`NetworkView::is_online`]; their state may still be inspected for test
/// oracles but the router will refuse to hop to them.
pub trait NetworkView {
    /// The peer's current path, or `None` if the peer is unknown.
    fn path_of(&self, peer: PeerId) -> Option<Path>;
    /// Routing references of the peer at the given level.
    fn routing_refs(&self, peer: PeerId, level: usize) -> Vec<(PeerId, Path)>;
    /// Whether the peer is currently reachable.
    fn is_online(&self, peer: PeerId) -> bool;
    /// The peer's locally stored entries (used to answer queries).
    fn store_of(&self, peer: PeerId) -> Option<&KeyStore>;
}

/// Why a lookup terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LookupStatus {
    /// The responsible peer was reached.
    Found {
        /// The peer whose path covers the requested key.
        responsible: PeerId,
    },
    /// Routing got stuck: no online reference for the required level.
    NoRoute {
        /// The last peer reached before routing failed.
        stuck_at: PeerId,
        /// The path level for which no online reference existed.
        level: usize,
    },
    /// The hop limit was exceeded (indicates an inconsistent overlay).
    HopLimit,
}

/// Result of a key lookup.
#[derive(Clone, Debug)]
pub struct LookupResult {
    /// Termination status.
    pub status: LookupStatus,
    /// Number of forwarding hops (0 if the start peer was responsible).
    pub hops: usize,
    /// The peers visited, starting peer first.
    pub visited: Vec<PeerId>,
    /// Entries with exactly the requested key found at the responsible peer.
    pub entries: Vec<DataEntry>,
}

impl LookupResult {
    /// Whether the lookup reached a responsible peer.
    pub fn is_success(&self) -> bool {
        matches!(self.status, LookupStatus::Found { .. })
    }
}

/// Result of a range query.
#[derive(Clone, Debug, Default)]
pub struct RangeResult {
    /// All matching entries found (deduplicated).
    pub entries: Vec<DataEntry>,
    /// Total number of forwarding hops across the traversal.
    pub hops: usize,
    /// Number of distinct partitions (responsible peers) visited.
    pub partitions_visited: usize,
    /// Whether every sub-interval of the range could be resolved.
    pub complete: bool,
}

/// Hard bound on hops; a consistent overlay of any realistic size stays far
/// below this.
pub const MAX_HOPS: usize = 128;

/// Performs a prefix-routing lookup for `key`, starting at `start`.
pub fn lookup<N: NetworkView, R: Rng + ?Sized>(
    net: &N,
    start: PeerId,
    key: Key,
    rng: &mut R,
) -> LookupResult {
    let mut current = start;
    let mut visited = vec![start];
    let mut hops = 0;

    loop {
        let path = match net.path_of(current) {
            Some(p) => p,
            None => {
                return LookupResult {
                    status: LookupStatus::NoRoute {
                        stuck_at: current,
                        level: 0,
                    },
                    hops,
                    visited,
                    entries: Vec::new(),
                }
            }
        };

        // Find the first bit of the peer's path that disagrees with the key.
        let mismatch = (0..path.len()).find(|&i| path.bit(i) != key.bit(i));
        match mismatch {
            None => {
                // The peer's path is a prefix of the key: responsible peer.
                let entries = net
                    .store_of(current)
                    .map(|s| s.range(key, key).copied().collect())
                    .unwrap_or_default();
                return LookupResult {
                    status: LookupStatus::Found {
                        responsible: current,
                    },
                    hops,
                    visited,
                    entries,
                };
            }
            Some(level) => {
                // Forward to a random online reference for the complementary
                // subtree at `level`; fall back to any alternative reference
                // at that level before giving up.
                let mut refs = net.routing_refs(current, level);
                // Randomise the preference order.
                for i in (1..refs.len()).rev() {
                    refs.swap(i, rng.gen_range(0..=i));
                }
                let next = refs.into_iter().find(|(p, _)| net.is_online(*p));
                match next {
                    Some((peer, _)) => {
                        hops += 1;
                        if hops > MAX_HOPS {
                            return LookupResult {
                                status: LookupStatus::HopLimit,
                                hops,
                                visited,
                                entries: Vec::new(),
                            };
                        }
                        visited.push(peer);
                        current = peer;
                    }
                    None => {
                        return LookupResult {
                            status: LookupStatus::NoRoute {
                                stuck_at: current,
                                level,
                            },
                            hops,
                            visited,
                            entries: Vec::new(),
                        }
                    }
                }
            }
        }
    }
}

/// Performs an order-preserving range query for keys in `[lo, hi]`.
///
/// The range is resolved by a sequential min-to-max traversal: route to the
/// partition containing `lo`, collect its matching entries, then route to
/// the partition containing the smallest key above the current partition's
/// upper bound, and so on until the partition containing `hi` has been
/// visited.  This is possible precisely because the overlay preserves key
/// order (the motivation for data-oriented overlays in the paper's
/// introduction); on a uniformly hashed DHT the same query would need to
/// contact every node.
pub fn range_query<N: NetworkView, R: Rng + ?Sized>(
    net: &N,
    start: PeerId,
    lo: Key,
    hi: Key,
    rng: &mut R,
) -> RangeResult {
    assert!(lo <= hi, "invalid range");
    let mut result = RangeResult {
        complete: true,
        ..RangeResult::default()
    };
    let mut cursor = lo;
    let mut from = start;
    let mut seen = std::collections::BTreeSet::new();

    loop {
        let lookup_res = lookup(net, from, cursor, rng);
        result.hops += lookup_res.hops;
        let responsible = match lookup_res.status {
            LookupStatus::Found { responsible } => responsible,
            _ => {
                result.complete = false;
                return result;
            }
        };
        result.partitions_visited += 1;
        let path = net
            .path_of(responsible)
            .expect("responsible peer must have a path");
        if let Some(store) = net.store_of(responsible) {
            for e in store.range(cursor.max(lo), hi.min(path.upper_key())) {
                if seen.insert(*e) {
                    result.entries.push(*e);
                }
            }
        }
        // Continue from the next key after this partition.
        let upper = path.upper_key();
        if upper >= hi || upper == Key::MAX {
            return result;
        }
        cursor = Key(upper.0 + 1);
        from = responsible;
        if result.partitions_visited > 4096 {
            // Safety net against inconsistent overlays.
            result.complete = false;
            return result;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::DataId;
    use crate::peer::PeerState;
    use crate::routing::RoutingEntry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// A tiny in-memory network for unit tests.
    struct TestNet {
        peers: HashMap<PeerId, PeerState>,
    }

    impl NetworkView for TestNet {
        fn path_of(&self, peer: PeerId) -> Option<Path> {
            self.peers.get(&peer).map(|p| p.path)
        }
        fn routing_refs(&self, peer: PeerId, level: usize) -> Vec<(PeerId, Path)> {
            self.peers
                .get(&peer)
                .map(|p| {
                    p.routing
                        .level(level)
                        .iter()
                        .map(|e| (e.peer, e.path))
                        .collect()
                })
                .unwrap_or_default()
        }
        fn is_online(&self, peer: PeerId) -> bool {
            self.peers.get(&peer).map(|p| p.online).unwrap_or(false)
        }
        fn store_of(&self, peer: PeerId) -> Option<&KeyStore> {
            self.peers.get(&peer).map(|p| &p.store)
        }
    }

    /// Builds a fully consistent 4-partition overlay: paths 00, 01, 10, 11,
    /// one peer each, with complete routing tables, and one entry per
    /// partition midpoint.
    fn four_partition_net() -> TestNet {
        let paths = ["00", "01", "10", "11"];
        let mut rng = StdRng::seed_from_u64(9);
        let mut peers = HashMap::new();
        for (i, p) in paths.iter().enumerate() {
            let id = PeerId(i as u64);
            let path = Path::parse(p);
            let (lo, hi) = path.interval();
            let mid = (lo + hi) / 2.0;
            let mut state = PeerState::with_entries(
                id,
                0,
                vec![DataEntry::new(Key::from_fraction(mid), DataId(i as u64))],
            );
            state.path = path;
            peers.insert(id, state);
        }
        // complete routing tables
        let ids: Vec<PeerId> = peers.keys().copied().collect();
        let snapshot: Vec<(PeerId, Path)> = peers.values().map(|p| (p.id, p.path)).collect();
        for id in ids {
            let own_path = peers[&id].path;
            for &(other, opath) in &snapshot {
                if other == id {
                    continue;
                }
                let cpl = own_path.common_prefix_len(&opath);
                if cpl < own_path.len() && cpl < opath.len() {
                    let peer = peers.get_mut(&id).unwrap();
                    peer.routing.add(
                        cpl,
                        RoutingEntry {
                            peer: other,
                            path: opath,
                        },
                        &mut rng,
                    );
                }
            }
        }
        TestNet { peers }
    }

    #[test]
    fn lookup_reaches_responsible_peer_from_anywhere() {
        let net = four_partition_net();
        let mut rng = StdRng::seed_from_u64(1);
        for start in 0..4u64 {
            for (frac, expected) in [(0.1, 0), (0.3, 1), (0.6, 2), (0.9, 3)] {
                let res = lookup(&net, PeerId(start), Key::from_fraction(frac), &mut rng);
                assert!(res.is_success(), "start {start} frac {frac}");
                assert_eq!(
                    res.status,
                    LookupStatus::Found {
                        responsible: PeerId(expected)
                    }
                );
                assert!(res.hops <= 2);
            }
        }
    }

    #[test]
    fn lookup_finds_stored_entries() {
        let net = four_partition_net();
        let mut rng = StdRng::seed_from_u64(2);
        let res = lookup(&net, PeerId(0), Key::from_fraction(0.375), &mut rng);
        assert!(res.is_success());
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.entries[0].id, DataId(1));
    }

    #[test]
    fn lookup_fails_cleanly_when_route_is_down() {
        let mut net = four_partition_net();
        // take down both peers of the right half reachable from peer 0
        net.peers.get_mut(&PeerId(2)).unwrap().online = false;
        net.peers.get_mut(&PeerId(3)).unwrap().online = false;
        let mut rng = StdRng::seed_from_u64(3);
        let res = lookup(&net, PeerId(0), Key::from_fraction(0.9), &mut rng);
        assert!(!res.is_success());
        assert!(matches!(res.status, LookupStatus::NoRoute { .. }));
    }

    #[test]
    fn range_query_collects_all_partitions() {
        let net = four_partition_net();
        let mut rng = StdRng::seed_from_u64(4);
        let res = range_query(
            &net,
            PeerId(0),
            Key::from_fraction(0.0),
            Key::from_fraction(0.999),
            &mut rng,
        );
        assert!(res.complete);
        assert_eq!(res.partitions_visited, 4);
        assert_eq!(res.entries.len(), 4);
        // entries come back in key order
        assert!(res.entries.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn range_query_respects_bounds() {
        let net = four_partition_net();
        let mut rng = StdRng::seed_from_u64(5);
        let res = range_query(
            &net,
            PeerId(3),
            Key::from_fraction(0.3),
            Key::from_fraction(0.7),
            &mut rng,
        );
        assert!(res.complete);
        // partitions 01 and 10 contain the midpoints 0.375 and 0.625
        assert_eq!(res.entries.len(), 2);
        assert!(res
            .entries
            .iter()
            .all(|e| (0.3..=0.7).contains(&e.key.as_fraction())));
    }

    #[test]
    fn unknown_start_peer_reports_no_route() {
        let net = four_partition_net();
        let mut rng = StdRng::seed_from_u64(6);
        let res = lookup(&net, PeerId(99), Key::from_fraction(0.5), &mut rng);
        assert!(!res.is_success());
    }

    /// Builds a fully consistent balanced trie of the given depth: one peer
    /// per leaf path, complete routing tables, every corpus entry stored at
    /// the covering leaf.  On such an overlay a range scan has an exact
    /// oracle: the brute-force filter of the corpus.
    fn consistent_net(depth: usize, corpus: &[Key]) -> TestNet {
        let mut rng = StdRng::seed_from_u64(depth as u64);
        let mut peers = HashMap::new();
        for leaf in 0..(1usize << depth) {
            let id = PeerId(leaf as u64);
            let bits: String = (0..depth)
                .map(|b| {
                    if leaf >> (depth - 1 - b) & 1 == 1 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            let path = Path::parse(&bits);
            let entries: Vec<DataEntry> = corpus
                .iter()
                .enumerate()
                .filter(|(_, &k)| path.covers(k))
                .map(|(i, &k)| DataEntry::new(k, DataId(i as u64)))
                .collect();
            let mut state = PeerState::with_entries(id, 0, entries);
            state.path = path;
            peers.insert(id, state);
        }
        let ids: Vec<PeerId> = peers.keys().copied().collect();
        let snapshot: Vec<(PeerId, Path)> = peers.values().map(|p| (p.id, p.path)).collect();
        for id in ids {
            let own_path = peers[&id].path;
            for &(other, opath) in &snapshot {
                if other == id {
                    continue;
                }
                let cpl = own_path.common_prefix_len(&opath);
                if cpl < own_path.len() && cpl < opath.len() {
                    let peer = peers.get_mut(&id).unwrap();
                    peer.routing.add(
                        cpl,
                        RoutingEntry {
                            peer: other,
                            path: opath,
                        },
                        &mut rng,
                    );
                }
            }
        }
        TestNet { peers }
    }

    mod range_parity {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            // A trie range scan over a random corpus returns exactly the
            // brute-force key-filter set, regardless of trie depth, range
            // bounds, or starting peer.
            #[test]
            fn prop_range_scan_equals_brute_force(
                depth in 1usize..=4,
                raw_keys in proptest::collection::vec(any::<u64>(), 0..48),
                a in any::<u64>(),
                b in any::<u64>(),
                start_raw in any::<u64>(),
                rng_seed in any::<u64>(),
            ) {
                let corpus: Vec<Key> = raw_keys.iter().map(|&v| Key(v)).collect();
                let (lo, hi) = (Key(a.min(b)), Key(a.max(b)));
                let net = consistent_net(depth, &corpus);
                let start = PeerId(start_raw % (1u64 << depth));
                let mut rng = StdRng::seed_from_u64(rng_seed);
                let res = range_query(&net, start, lo, hi, &mut rng);
                prop_assert!(res.complete, "consistent overlay must complete");
                let mut expected: Vec<DataEntry> = corpus
                    .iter()
                    .enumerate()
                    .filter(|(_, &k)| lo <= k && k <= hi)
                    .map(|(i, &k)| DataEntry::new(k, DataId(i as u64)))
                    .collect();
                expected.sort();
                prop_assert_eq!(res.entries, expected);
            }

            // A lookup on the consistent trie finds every entry stored
            // under the requested key.
            #[test]
            fn prop_lookup_finds_every_stored_key(
                depth in 1usize..=4,
                raw_keys in proptest::collection::vec(any::<u64>(), 1..32),
                rng_seed in any::<u64>(),
            ) {
                let corpus: Vec<Key> = raw_keys.iter().map(|&v| Key(v)).collect();
                let net = consistent_net(depth, &corpus);
                let mut rng = StdRng::seed_from_u64(rng_seed);
                for (i, &key) in corpus.iter().enumerate() {
                    let start = PeerId((i as u64) % (1u64 << depth));
                    let res = lookup(&net, start, key, &mut rng);
                    prop_assert!(res.is_success());
                    prop_assert!(res.entries.iter().any(|e| e.key == key));
                }
            }
        }
    }
}
