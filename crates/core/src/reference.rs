//! The global reference partitioner (`Partition(P, n, d)`, Algorithm 1).
//!
//! The paper uses this algorithm — which assumes *global knowledge* of the
//! key distribution and the peer population — to define what an *optimal*
//! load-balanced partitioning looks like.  The decentralized construction is
//! then evaluated by its deviation from this reference (Section 4.4).
//!
//! Given a partition holding `d` data keys and `n` associated peers the
//! algorithm bisects the partition at its binary midpoint into sub-partitions
//! holding `d_l` and `d_r` keys and assigns peers proportionally to the data
//! load (`n_l = n * d_l / d`), subject to two load-balancing criteria:
//!
//! 1. **maximum storage load** `delta_max`: a partition is only split while
//!    it holds more than `delta_max` keys;
//! 2. **minimum replication factor** `n_min`: every partition keeps at least
//!    `n_min` peers, so a split only happens if both sides can be given at
//!    least `n_min` peers; when the proportional share of one side would
//!    drop below `n_min`, that side is topped up to exactly `n_min`.

use crate::key::Key;
use crate::path::{Path, MAX_PATH_LEN};
use crate::trie::PartitionTrie;

/// Load-balancing parameters of the reference partitioner (and of the
/// decentralized construction, which receives the same parameters from the
/// initiation phase, Section 4.1/4.2).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BalanceParams {
    /// Maximum number of data keys a partition may hold before it must be
    /// split (`delta_max` in the paper).
    pub delta_max: usize,
    /// Minimum number of replica peers per partition (`n_min`).
    pub n_min: usize,
}

impl BalanceParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(delta_max: usize, n_min: usize) -> Self {
        assert!(delta_max > 0, "delta_max must be positive");
        assert!(n_min > 0, "n_min must be positive");
        BalanceParams { delta_max, n_min }
    }

    /// The parameter choice used by the paper's experiments (Section 4.4
    /// uses `delta_max = 10 * n_min` with 10 keys per peer):
    /// `delta_max = d_avg * n_min`, where `d_avg` is the average number of
    /// data keys per peer before replication.  This is exactly the perfect
    /// load-balance condition `d_total * n_min = N * delta_max` of
    /// Section 2.2.
    pub fn recommended(avg_keys_per_peer: f64, n_min: usize) -> Self {
        let delta_max = (avg_keys_per_peer * n_min as f64).ceil().max(1.0) as usize;
        BalanceParams::new(delta_max, n_min)
    }
}

/// One leaf of the reference partitioning.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ReferenceLeaf {
    /// The partition path.
    pub path: Path,
    /// Number of peers the reference assigns to this partition (fractional:
    /// the proportional assignment does not round).
    pub peers: f64,
    /// Number of data keys in this partition.
    pub load: usize,
}

/// Result of running the global reference partitioner.
#[derive(Clone, Debug, Default)]
pub struct ReferencePartitioning {
    /// Leaves in canonical key-space order.
    pub leaves: Vec<ReferenceLeaf>,
}

impl ReferencePartitioning {
    /// Computes the reference partitioning for the (global multiset of) data
    /// keys and `n_peers` peers.
    ///
    /// The key slice does not need to be sorted; it is sorted internally.
    pub fn compute(keys: &[Key], n_peers: usize, params: BalanceParams) -> ReferencePartitioning {
        let mut sorted: Vec<Key> = keys.to_vec();
        sorted.sort_unstable();
        let mut leaves = Vec::new();
        partition_rec(&sorted, n_peers as f64, Path::root(), params, &mut leaves);
        leaves.sort_by_key(|l| l.path);
        ReferencePartitioning { leaves }
    }

    /// Number of leaf partitions.
    pub fn num_partitions(&self) -> usize {
        self.leaves.len()
    }

    /// Total (fractional) peers across leaves — equals the input peer count
    /// up to floating point error.
    pub fn total_peers(&self) -> f64 {
        self.leaves.iter().map(|l| l.peers).sum()
    }

    /// Total data keys across leaves.
    pub fn total_load(&self) -> usize {
        self.leaves.iter().map(|l| l.load).sum()
    }

    /// Maximum leaf depth of the reference trie.
    pub fn depth(&self) -> usize {
        self.leaves.iter().map(|l| l.path.len()).max().unwrap_or(0)
    }

    /// Mean leaf depth of the reference trie.
    pub fn mean_depth(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        self.leaves.iter().map(|l| l.path.len() as f64).sum::<f64>() / self.leaves.len() as f64
    }

    /// Returns the reference peer count as a trie keyed by path.
    pub fn peer_trie(&self) -> PartitionTrie<f64> {
        let mut trie = PartitionTrie::new();
        for leaf in &self.leaves {
            trie.insert(leaf.path, leaf.peers);
        }
        trie
    }

    /// Returns the reference load as a trie keyed by path.
    pub fn load_trie(&self) -> PartitionTrie<usize> {
        let mut trie = PartitionTrie::new();
        for leaf in &self.leaves {
            trie.insert(leaf.path, leaf.load);
        }
        trie
    }

    /// The leaf covering the given key, if any (always `Some` for a
    /// non-empty partitioning).
    pub fn leaf_for(&self, key: Key) -> Option<&ReferenceLeaf> {
        self.leaves.iter().find(|l| l.path.covers(key))
    }
}

/// Recursive bisection following Algorithm 1.
///
/// `keys` must be sorted and contain exactly the keys of the current
/// partition `path`; `n` is the (fractional) number of peers assigned to it.
fn partition_rec(
    keys: &[Key],
    n: f64,
    path: Path,
    params: BalanceParams,
    out: &mut Vec<ReferenceLeaf>,
) {
    let d = keys.len();
    let overloaded = d > params.delta_max;
    let splittable = n >= 2.0 * params.n_min as f64 && path.len() < MAX_PATH_LEN;
    if !(overloaded && splittable) {
        out.push(ReferenceLeaf {
            path,
            peers: n,
            load: d,
        });
        return;
    }

    // Bisect at the binary midpoint of the partition's interval.
    let left_path = path.child(false);
    let right_path = path.child(true);
    let mid = left_path.upper_key();
    // `keys` is sorted, so the split point is found by partition_point.
    let split = keys.partition_point(|&k| k <= mid);
    let (left_keys, right_keys) = keys.split_at(split);
    let (dl, dr) = (left_keys.len() as f64, right_keys.len() as f64);

    // Proportional peer assignment (lines 3/7 of Algorithm 1), floored at
    // n_min on the lighter side when necessary.
    let n_min = params.n_min as f64;
    let (nl, nr) = if dl + dr == 0.0 {
        (n / 2.0, n / 2.0)
    } else {
        let prop_l = n * dl / (dl + dr);
        let prop_r = n - prop_l;
        if prop_l >= n_min && prop_r >= n_min {
            (prop_l, prop_r)
        } else if prop_l < prop_r {
            (n_min, n - n_min)
        } else {
            (n - n_min, n_min)
        }
    };

    partition_rec(left_keys, nl, left_path, params, out);
    partition_rec(right_keys, nr, right_path, params, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_keys(n: usize) -> Vec<Key> {
        (0..n)
            .map(|i| Key::from_fraction((i as f64 + 0.5) / n as f64))
            .collect()
    }

    fn skewed_keys(n: usize) -> Vec<Key> {
        // concentrate 80% of keys in [0, 0.1)
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                if i % 5 != 0 {
                    Key::from_fraction(x * 0.1)
                } else {
                    Key::from_fraction(0.1 + x * 0.9)
                }
            })
            .collect()
    }

    #[test]
    fn no_split_when_underloaded() {
        let keys = uniform_keys(10);
        let r = ReferencePartitioning::compute(&keys, 100, BalanceParams::new(100, 5));
        assert_eq!(r.num_partitions(), 1);
        assert_eq!(r.leaves[0].path, Path::root());
        assert_eq!(r.leaves[0].load, 10);
        assert!((r.leaves[0].peers - 100.0).abs() < 1e-9);
    }

    #[test]
    fn no_split_when_too_few_peers() {
        let keys = uniform_keys(1000);
        let r = ReferencePartitioning::compute(&keys, 8, BalanceParams::new(10, 5));
        // 8 peers < 2 * n_min = 10, cannot split even though overloaded.
        assert_eq!(r.num_partitions(), 1);
    }

    #[test]
    fn balanced_split_for_uniform_keys() {
        let keys = uniform_keys(1024);
        let params = BalanceParams::new(64, 4);
        let r = ReferencePartitioning::compute(&keys, 128, params);
        assert!(r.num_partitions() > 1);
        // conservation of peers and load
        assert!((r.total_peers() - 128.0).abs() < 1e-6);
        assert_eq!(r.total_load(), 1024);
        // every leaf respects the storage bound or could not be split further
        for leaf in &r.leaves {
            assert!(leaf.load <= params.delta_max || leaf.peers < 2.0 * params.n_min as f64);
            assert!(leaf.peers >= params.n_min as f64 - 1e-9);
        }
        // uniform keys should give a (nearly) balanced trie
        let depths: Vec<usize> = r.leaves.iter().map(|l| l.path.len()).collect();
        let min = *depths.iter().min().unwrap();
        let max = *depths.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "uniform trie should be balanced: {min}..{max}"
        );
    }

    #[test]
    fn skewed_keys_make_deeper_partitions_where_dense() {
        let keys = skewed_keys(2000);
        let params = BalanceParams::new(50, 5);
        let r = ReferencePartitioning::compute(&keys, 400, params);
        assert!(r.num_partitions() > 2);
        // the dense region [0, 0.1) must be covered by deeper leaves than the
        // sparse region around 0.9
        let dense = r.leaf_for(Key::from_fraction(0.05)).unwrap();
        let sparse = r.leaf_for(Key::from_fraction(0.9)).unwrap();
        assert!(dense.path.len() > sparse.path.len());
        // peers follow load: per-key replication should be roughly constant
        let dense_rep = dense.peers / dense.load.max(1) as f64;
        let sparse_rep = sparse.peers / sparse.load.max(1) as f64;
        assert!(dense_rep > 0.0 && sparse_rep > 0.0);
    }

    #[test]
    fn leaves_form_complete_prefix_free_partition() {
        let keys = skewed_keys(3000);
        let r = ReferencePartitioning::compute(&keys, 300, BalanceParams::new(40, 5));
        let trie = r.load_trie();
        assert!(trie.is_prefix_free());
        assert!(trie.is_complete_partition());
    }

    #[test]
    fn leaf_for_finds_covering_partition() {
        let keys = uniform_keys(512);
        let r = ReferencePartitioning::compute(&keys, 64, BalanceParams::new(32, 4));
        for &x in &[0.01, 0.3, 0.55, 0.99] {
            let k = Key::from_fraction(x);
            let leaf = r.leaf_for(k).unwrap();
            assert!(leaf.path.covers(k));
        }
    }

    #[test]
    fn recommended_params() {
        let p = BalanceParams::recommended(10.0, 5);
        assert_eq!(p.delta_max, 50);
        assert_eq!(p.n_min, 5);
    }

    #[test]
    #[should_panic]
    fn zero_nmin_rejected() {
        BalanceParams::new(10, 0);
    }
}
