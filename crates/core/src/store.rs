//! Local key store of a peer.
//!
//! Every peer locally stores the `(key, data-id)` entries it is responsible
//! for (and, before and during overlay construction, the entries it happens
//! to hold).  Construction decisions in the paper are driven entirely by the
//! locally stored keys — the fraction of keys falling into the two halves of
//! the current partition is the estimator `p̂` of the data skew `p` — so the
//! store supports cheap range counting, splitting along a path bit, and
//! uniform sampling.

use crate::key::{DataEntry, Key};
use crate::path::Path;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Read-only access to a set of entries, implemented both by the owning
/// [`KeyStore`] and by the borrowed [`RestrictedView`].
///
/// The exchange engine's partition assessment only ever *reads* the two
/// interacting stores, so it is written against this trait; that lets the
/// hot construction path hand it zero-copy range views instead of cloning a
/// `BTreeSet` per interaction.
pub trait StoreRead {
    /// Number of entries.
    fn len(&self) -> usize;

    /// Whether there are no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the given entry is present.
    fn contains(&self, entry: &DataEntry) -> bool;

    /// Iterator over all entries in key order.
    fn entries(&self) -> impl Iterator<Item = &DataEntry>;

    /// Number of entries covered by the given partition path.
    fn count_in(&self, path: &Path) -> usize;

    /// The smallest and largest key stored within `path`, if any.
    fn key_span_in(&self, path: &Path) -> Option<(Key, Key)>;

    /// Size of the set intersection with another readable store (number of
    /// common entries).
    fn intersection_size_with(&self, other: &impl StoreRead) -> usize {
        if self.len() <= other.len() {
            self.entries().filter(|e| other.contains(e)).count()
        } else {
            other.entries().filter(|e| self.contains(e)).count()
        }
    }

    /// Entries of `self` that are missing in `target` (what anti-entropy
    /// would push from here to there).
    fn missing_in(&self, target: &impl StoreRead) -> Vec<DataEntry> {
        self.entries()
            .filter(|e| !target.contains(e))
            .copied()
            .collect()
    }
}

/// Ordered local store of indexed entries.
///
/// Entries are kept in a `BTreeSet` ordered by `(key, id)` so that range
/// queries and per-partition counting are logarithmic plus output size.
///
/// The set lives behind an [`Arc`] with copy-on-write semantics:
/// [`Clone`] is an O(1) snapshot sharing the same storage, and the first
/// mutation after a snapshot copies the set exactly once (the
/// log-structured pattern — a sealed shared run, copied only before
/// diverging).  Use [`KeyStore::shares_storage_with`] to assert sharing
/// and [`KeyStore::deep_clone`] when an eager private copy is wanted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyStore {
    entries: Arc<BTreeSet<DataEntry>>,
}

impl KeyStore {
    /// Creates an empty store.
    pub fn new() -> KeyStore {
        KeyStore::default()
    }

    /// Builds a store from an iterator of entries.
    pub fn from_entries<I: IntoIterator<Item = DataEntry>>(entries: I) -> KeyStore {
        KeyStore {
            entries: Arc::new(entries.into_iter().collect()),
        }
    }

    /// Mutable access to the set, copying it first iff a snapshot still
    /// shares it (the single copy-on-write point of every mutator).
    fn make_mut(&mut self) -> &mut BTreeSet<DataEntry> {
        Arc::make_mut(&mut self.entries)
    }

    /// Inserts an entry; returns `true` if it was not present before.
    pub fn insert(&mut self, entry: DataEntry) -> bool {
        self.make_mut().insert(entry)
    }

    /// Removes an entry; returns `true` if it was present.
    pub fn remove(&mut self, entry: &DataEntry) -> bool {
        self.make_mut().remove(entry)
    }

    /// An eager private copy that shares no storage with `self` (the
    /// pre-COW `Clone` semantics, kept for cost comparisons).
    pub fn deep_clone(&self) -> KeyStore {
        KeyStore {
            entries: Arc::new((*self.entries).clone()),
        }
    }

    /// Whether this store and `other` currently share one underlying
    /// entry set (true right after a [`Clone`], false once either side
    /// mutated or after [`KeyStore::deep_clone`]).
    pub fn shares_storage_with(&self, other: &KeyStore) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the given entry is stored.
    pub fn contains(&self, entry: &DataEntry) -> bool {
        self.entries.contains(entry)
    }

    /// Whether any entry with the given key is stored.
    pub fn contains_key(&self, key: Key) -> bool {
        self.range(key, key).next().is_some()
    }

    /// Iterator over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &DataEntry> {
        self.entries.iter()
    }

    /// Iterator over entries whose key lies in the **inclusive** range
    /// `[lo, hi]`.
    pub fn range(&self, lo: Key, hi: Key) -> impl Iterator<Item = &DataEntry> {
        let start = DataEntry {
            key: lo,
            id: crate::key::DataId(0),
        };
        let end = DataEntry {
            key: hi,
            id: crate::key::DataId(u64::MAX),
        };
        self.entries.range(start..=end)
    }

    /// Number of entries covered by the given partition path.
    pub fn count_in(&self, path: &Path) -> usize {
        self.range(path.lower_key(), path.upper_key()).count()
    }

    /// Splits off and returns all entries **not** covered by `path`,
    /// retaining only the covered ones.
    ///
    /// This is the "split the key space and exchange content" interaction of
    /// Figure 2: after two peers agree to extend their paths with opposite
    /// bits, each keeps the entries of its new partition and hands the rest
    /// to the other peer.
    pub fn split_retain(&mut self, path: &Path) -> Vec<DataEntry> {
        let (keep, give): (BTreeSet<DataEntry>, BTreeSet<DataEntry>) = self
            .entries
            .iter()
            .copied()
            .partition(|e| path.covers(e.key));
        self.entries = Arc::new(keep);
        give.into_iter().collect()
    }

    /// Merges another peer's entries into this store (the "become replicas
    /// and reconcile content" interaction), returning the number of entries
    /// that were actually new.
    pub fn merge_from<I: IntoIterator<Item = DataEntry>>(&mut self, entries: I) -> usize {
        let set = self.make_mut();
        let mut added = 0;
        for e in entries {
            if set.insert(e) {
                added += 1;
            }
        }
        added
    }

    /// Merges a whole batch of entries at once, returning the number of
    /// entries that were actually new.
    ///
    /// Semantically identical to [`KeyStore::merge_from`], but the batch is
    /// sorted up front and handed to the set in one `extend` call, so a
    /// reconciliation transfer (split handover, replication push, forwarded
    /// complement keys) costs one bulk operation instead of a per-entry
    /// insert-and-count loop.  The added count is derived from the length
    /// difference, which is exact because the set deduplicates.
    pub fn merge_batch(&mut self, mut entries: Vec<DataEntry>) -> usize {
        if entries.is_empty() {
            return 0;
        }
        entries.sort_unstable();
        let set = self.make_mut();
        let before = set.len();
        set.extend(entries);
        set.len() - before
    }

    /// Draws `count` entries uniformly at random (without replacement) from
    /// the entries covered by `path`.  If fewer are available, all of them
    /// are returned.
    ///
    /// The paper's error analysis (Section 3.2) models exactly this: peers
    /// estimate the load ratio `p` of a partition from a small uniform
    /// sample of their locally stored keys.
    pub fn sample_in<R: Rng + ?Sized>(
        &self,
        path: &Path,
        count: usize,
        rng: &mut R,
    ) -> Vec<DataEntry> {
        let mut covered: Vec<DataEntry> = self
            .range(path.lower_key(), path.upper_key())
            .copied()
            .collect();
        covered.shuffle(rng);
        covered.truncate(count);
        covered
    }

    /// Estimates, from at most `sample_size` locally stored keys inside
    /// `path`, the fraction of that partition's load falling into the
    /// **lower** half (`path + 0`).
    ///
    /// Returns `None` if no local key falls inside `path` (the peer has no
    /// information at all).  With `sample_size == usize::MAX` this is the
    /// exact local fraction.
    pub fn estimate_lower_fraction<R: Rng + ?Sized>(
        &self,
        path: &Path,
        sample_size: usize,
        rng: &mut R,
    ) -> Option<f64> {
        let sample = if sample_size == usize::MAX {
            self.range(path.lower_key(), path.upper_key())
                .copied()
                .collect::<Vec<_>>()
        } else {
            self.sample_in(path, sample_size, rng)
        };
        if sample.is_empty() {
            return None;
        }
        let lower = path.child(false);
        let in_lower = sample.iter().filter(|e| lower.covers(e.key)).count();
        Some(in_lower as f64 / sample.len() as f64)
    }

    /// A borrowed view of this store restricted to the entries covered by
    /// `path`.
    ///
    /// The view implements [`StoreRead`] over the partition's key range
    /// without copying anything; construction interactions assess partitions
    /// through it, which removes the per-interaction `BTreeSet` clone from
    /// the hot path.
    pub fn restricted(&self, path: &Path) -> RestrictedView<'_> {
        RestrictedView {
            set: &self.entries,
            lo: path.lower_key(),
            hi: path.upper_key(),
            len: std::cell::Cell::new(None),
        }
    }

    /// An owned copy of this store restricted to the entries covered by
    /// `path` (only needed when the restriction must outlive the store
    /// borrow; interactions use the zero-copy [`KeyStore::restricted`]).
    pub fn restricted_owned(&self, path: &Path) -> KeyStore {
        KeyStore::from_entries(self.range(path.lower_key(), path.upper_key()).copied())
    }

    /// The smallest and largest key stored within `path`, if any.
    ///
    /// A partition whose span is a single point (all stored entries share one
    /// key, e.g. the postings of one very popular index term) cannot be
    /// balanced by bisection; callers use this to detect that case.
    pub fn key_span_in(&self, path: &Path) -> Option<(Key, Key)> {
        let mut iter = self.range(path.lower_key(), path.upper_key());
        let first = iter.next()?.key;
        let last = iter.last().map(|e| e.key).unwrap_or(first);
        Some((first, last))
    }

    /// All stored keys (with multiplicity per distinct `(key, id)` entry).
    pub fn keys(&self) -> Vec<Key> {
        self.entries.iter().map(|e| e.key).collect()
    }

    /// Removes and returns all entries, leaving the store empty.
    pub fn drain(&mut self) -> Vec<DataEntry> {
        let set = std::mem::take(&mut self.entries);
        match Arc::try_unwrap(set) {
            Ok(owned) => owned.into_iter().collect(),
            // A snapshot still shares the set: leave its copy untouched.
            Err(shared) => shared.iter().copied().collect(),
        }
    }

    /// Size of the set intersection with another store (number of common
    /// entries).  Used by the replica-count estimator (Section 4.2).
    ///
    /// Thin wrapper over [`StoreRead::intersection_size_with`] so the
    /// size-ordered intersection algorithm exists once.
    pub fn intersection_size(&self, other: &KeyStore) -> usize {
        self.intersection_size_with(other)
    }

    /// Size of the set union with another store.
    pub fn union_size(&self, other: &KeyStore) -> usize {
        self.len() + other.len() - self.intersection_size(other)
    }

    /// Entries present in `other` but missing here (what anti-entropy would
    /// pull from a replica); the mirror image of [`StoreRead::missing_in`].
    pub fn missing_from(&self, other: &KeyStore) -> Vec<DataEntry> {
        other.missing_in(self)
    }
}

impl StoreRead for KeyStore {
    fn len(&self) -> usize {
        KeyStore::len(self)
    }

    fn contains(&self, entry: &DataEntry) -> bool {
        KeyStore::contains(self, entry)
    }

    fn entries(&self) -> impl Iterator<Item = &DataEntry> {
        self.entries.iter()
    }

    fn count_in(&self, path: &Path) -> usize {
        KeyStore::count_in(self, path)
    }

    fn key_span_in(&self, path: &Path) -> Option<(Key, Key)> {
        KeyStore::key_span_in(self, path)
    }
}

/// A zero-copy view of a [`KeyStore`] restricted to one partition's key
/// range, created by [`KeyStore::restricted`].
///
/// All [`StoreRead`] queries (including nested `count_in`/`key_span_in` for
/// child partitions) are answered directly from the underlying `BTreeSet`
/// by clamping the queried range to the view's bounds.  The entry count is
/// computed lazily and memoised, so iterate-only callers never pay for it.
#[derive(Clone, Debug)]
pub struct RestrictedView<'a> {
    set: &'a BTreeSet<DataEntry>,
    lo: Key,
    hi: Key,
    len: std::cell::Cell<Option<usize>>,
}

impl RestrictedView<'_> {
    /// The queried range clamped to the view's bounds, or `None` when they
    /// are disjoint.
    fn clamped(
        &self,
        lo: Key,
        hi: Key,
    ) -> Option<std::collections::btree_set::Range<'_, DataEntry>> {
        let lo = lo.max(self.lo);
        let hi = hi.min(self.hi);
        if lo > hi {
            return None;
        }
        let start = DataEntry {
            key: lo,
            id: crate::key::DataId(0),
        };
        let end = DataEntry {
            key: hi,
            id: crate::key::DataId(u64::MAX),
        };
        Some(self.set.range(start..=end))
    }
}

impl StoreRead for RestrictedView<'_> {
    fn len(&self) -> usize {
        match self.len.get() {
            Some(len) => len,
            None => {
                let len = self.clamped(self.lo, self.hi).map_or(0, |r| r.count());
                self.len.set(Some(len));
                len
            }
        }
    }

    fn contains(&self, entry: &DataEntry) -> bool {
        entry.key >= self.lo && entry.key <= self.hi && self.set.contains(entry)
    }

    fn entries(&self) -> impl Iterator<Item = &DataEntry> {
        self.clamped(self.lo, self.hi).into_iter().flatten()
    }

    fn count_in(&self, path: &Path) -> usize {
        self.clamped(path.lower_key(), path.upper_key())
            .map_or(0, |range| range.count())
    }

    fn key_span_in(&self, path: &Path) -> Option<(Key, Key)> {
        let mut range = self.clamped(path.lower_key(), path.upper_key())?;
        let first = range.next()?.key;
        let last = range.last().map(|e| e.key).unwrap_or(first);
        Some((first, last))
    }
}

impl FromIterator<DataEntry> for KeyStore {
    fn from_iter<T: IntoIterator<Item = DataEntry>>(iter: T) -> Self {
        KeyStore::from_entries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::DataId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(x: f64, id: u64) -> DataEntry {
        DataEntry::new(Key::from_fraction(x), DataId(id))
    }

    fn store_with(fracs: &[f64]) -> KeyStore {
        fracs
            .iter()
            .enumerate()
            .map(|(i, &x)| entry(x, i as u64))
            .collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = KeyStore::new();
        assert!(s.insert(entry(0.3, 1)));
        assert!(!s.insert(entry(0.3, 1)));
        assert!(s.contains(&entry(0.3, 1)));
        assert!(s.contains_key(Key::from_fraction(0.3)));
        assert!(!s.contains_key(Key::from_fraction(0.31)));
        assert!(s.remove(&entry(0.3, 1)));
        assert!(!s.remove(&entry(0.3, 1)));
        assert!(s.is_empty());
    }

    #[test]
    fn range_is_inclusive_and_ordered() {
        let s = store_with(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let got: Vec<f64> = s
            .range(Key::from_fraction(0.2), Key::from_fraction(0.4))
            .map(|e| e.key.as_fraction())
            .collect();
        assert_eq!(got.len(), 3);
        assert!(got.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn count_in_partition() {
        let s = store_with(&[0.1, 0.2, 0.3, 0.6, 0.7, 0.9]);
        assert_eq!(s.count_in(&Path::root()), 6);
        assert_eq!(s.count_in(&Path::parse("0")), 3);
        assert_eq!(s.count_in(&Path::parse("1")), 3);
        assert_eq!(s.count_in(&Path::parse("11")), 1);
    }

    #[test]
    fn split_retain_partitions_entries() {
        let mut s = store_with(&[0.1, 0.2, 0.3, 0.6, 0.7, 0.9]);
        let given = s.split_retain(&Path::parse("0"));
        assert_eq!(s.len(), 3);
        assert_eq!(given.len(), 3);
        assert!(s.iter().all(|e| e.key.as_fraction() < 0.5));
        assert!(given.iter().all(|e| e.key.as_fraction() >= 0.5));
    }

    #[test]
    fn merge_counts_new_entries() {
        let mut a = store_with(&[0.1, 0.2]);
        let b = store_with(&[0.2, 0.3]);
        // ids differ per store_with, so construct explicit overlap
        let mut a2 = KeyStore::new();
        a2.insert(entry(0.1, 1));
        a2.insert(entry(0.2, 2));
        let added = a2.merge_from(vec![entry(0.2, 2), entry(0.3, 3)]);
        assert_eq!(added, 1);
        assert_eq!(a2.len(), 3);
        // also exercise missing_from
        let missing = a.missing_from(&b);
        assert_eq!(missing.len(), 2);
        a.merge_from(missing);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn estimate_lower_fraction_exact_and_sampled() {
        let s = store_with(&[0.1, 0.2, 0.3, 0.6, 0.7, 0.8, 0.85, 0.9]);
        let mut rng = StdRng::seed_from_u64(7);
        let exact = s
            .estimate_lower_fraction(&Path::root(), usize::MAX, &mut rng)
            .unwrap();
        assert!((exact - 3.0 / 8.0).abs() < 1e-12);
        let sampled = s
            .estimate_lower_fraction(&Path::root(), 4, &mut rng)
            .unwrap();
        assert!((0.0..=1.0).contains(&sampled));
        assert!(
            s.estimate_lower_fraction(&Path::parse("111111"), 4, &mut rng)
                .is_none()
                || s.count_in(&Path::parse("111111")) > 0
        );
    }

    #[test]
    fn overlap_statistics() {
        let mut a = KeyStore::new();
        let mut b = KeyStore::new();
        for i in 0..10 {
            a.insert(entry(i as f64 / 20.0, i));
        }
        for i in 5..15 {
            b.insert(entry(i as f64 / 20.0, i));
        }
        assert_eq!(a.intersection_size(&b), 5);
        assert_eq!(b.intersection_size(&a), 5);
        assert_eq!(a.union_size(&b), 15);
    }

    #[test]
    fn sample_without_replacement() {
        let s = store_with(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
        let mut rng = StdRng::seed_from_u64(42);
        let sample = s.sample_in(&Path::root(), 5, &mut rng);
        assert_eq!(sample.len(), 5);
        let mut dedup = sample.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        // asking for more than available returns everything
        assert_eq!(s.sample_in(&Path::root(), 100, &mut rng).len(), 8);
    }

    #[test]
    fn cow_snapshot_shares_until_mutation() {
        let mut live = store_with(&[0.1, 0.2, 0.3]);
        let snapshot = live.clone();
        // The O(1) snapshot shares storage — zero entries were copied.
        assert!(snapshot.shares_storage_with(&live));
        assert!(!live.deep_clone().shares_storage_with(&live));

        // First mutation diverges the live store; the snapshot is frozen.
        live.insert(entry(0.9, 42));
        assert!(!snapshot.shares_storage_with(&live));
        assert_eq!(snapshot.len(), 3);
        assert_eq!(live.len(), 4);

        // Draining a shared store leaves the snapshot's copy intact.
        let snapshot2 = live.clone();
        let drained = live.drain();
        assert_eq!(drained.len(), 4);
        assert!(live.is_empty());
        assert_eq!(snapshot2.len(), 4);

        // Further mutations while unshared stay in place (no re-copy).
        let mut solo = store_with(&[0.4]);
        let before = solo.clone();
        drop(before);
        solo.insert(entry(0.5, 7));
        assert_eq!(solo.len(), 2);
    }

    #[test]
    fn split_retain_does_not_disturb_snapshots() {
        let mut live = store_with(&[0.1, 0.2, 0.6, 0.7]);
        let snapshot = live.clone();
        let given = live.split_retain(&Path::parse("0"));
        assert_eq!(given.len(), 2);
        assert_eq!(live.len(), 2);
        assert_eq!(
            snapshot.len(),
            4,
            "the snapshot must keep the pre-split set"
        );
    }

    #[test]
    fn drain_empties_store() {
        let mut s = store_with(&[0.1, 0.9]);
        let all = s.drain();
        assert_eq!(all.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn restricted_view_matches_owned_restriction() {
        let s = store_with(&[0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.7, 0.9]);
        for path in ["", "0", "1", "01", "00", "111", "0000"] {
            let path = Path::parse(path);
            let view = s.restricted(&path);
            let owned = s.restricted_owned(&path);
            assert_eq!(StoreRead::len(&view), KeyStore::len(&owned), "{path}");
            let via_view: Vec<DataEntry> = view.entries().copied().collect();
            let via_owned: Vec<DataEntry> = owned.iter().copied().collect();
            assert_eq!(via_view, via_owned, "{path}");
            for child in [path.child(false), path.child(true)] {
                assert_eq!(
                    StoreRead::count_in(&view, &child),
                    KeyStore::count_in(&owned, &child)
                );
                assert_eq!(
                    StoreRead::key_span_in(&view, &child),
                    KeyStore::key_span_in(&owned, &child)
                );
            }
        }
    }

    #[test]
    fn restricted_view_set_operations_match_key_store() {
        let a = store_with(&[0.1, 0.2, 0.3, 0.6, 0.7]);
        let b = store_with(&[0.2, 0.3, 0.4, 0.8]);
        let path = Path::root();
        let view_a = a.restricted(&path);
        assert_eq!(
            view_a.intersection_size_with(&b),
            a.intersection_size(&b),
            "view intersection must match the owned store's"
        );
        // missing_in(self, target) mirrors target.missing_from(self).
        assert_eq!(view_a.missing_in(&b), b.missing_from(&a));
        // A view only sees entries inside its bounds.
        let lower = a.restricted(&Path::parse("0"));
        assert_eq!(StoreRead::len(&lower), 3);
        assert!(!lower.contains(&entry(0.6, 3)));
    }
}
