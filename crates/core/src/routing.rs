//! Distributed prefix-routing tables.
//!
//! Each peer maintains, for every bit position of its path, one or more
//! randomly selected references to peers whose path has the *opposite* bit
//! at that position (Section 2.1).  The union of all routing tables
//! represents the trie in a distributed fashion; keeping several references
//! per level provides alternative access paths when peers fail.

use crate::path::Path;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Identifier of a peer.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PeerId(pub u64);

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A single routing reference: a peer believed to be responsible for the
/// complementary subtree at some level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RoutingEntry {
    /// The referenced peer.
    pub peer: PeerId,
    /// The path the referenced peer had when the reference was learned.
    /// Routing only requires that this path starts with the complementary
    /// prefix of the owner's path at the entry's level; it may be stale with
    /// respect to the peer's current (longer) path, which is harmless for
    /// prefix routing.
    pub path: Path,
}

/// Routing table of a peer: `levels[i]` holds references to peers whose
/// path agrees with the owner's path on the first `i` bits and has the
/// opposite bit at position `i`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoutingTable {
    levels: Vec<Vec<RoutingEntry>>,
    /// Maximum number of references kept per level (`0` = unbounded).
    fanout: usize,
}

impl RoutingTable {
    /// Creates an empty routing table with at most `fanout` references per
    /// level (`fanout == 0` keeps every reference ever learned).
    pub fn new(fanout: usize) -> RoutingTable {
        RoutingTable {
            levels: Vec::new(),
            fanout,
        }
    }

    /// Number of levels currently present.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of stored references.
    pub fn num_entries(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// The configured per-level fanout bound (`0` = unbounded).
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// References stored at `level`, or an empty slice.
    pub fn level(&self, level: usize) -> &[RoutingEntry] {
        self.levels.get(level).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Adds a reference at the given level.  Duplicate peer ids at the same
    /// level are ignored; if the level is full, a random existing entry is
    /// replaced (reference refresh keeps the table randomised, which the
    /// paper relies on for uniform load on the complementary subtree).
    pub fn add<R: Rng + ?Sized>(&mut self, level: usize, entry: RoutingEntry, rng: &mut R) {
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        let slot = &mut self.levels[level];
        if slot.iter().any(|e| e.peer == entry.peer) {
            return;
        }
        if self.fanout > 0 && slot.len() >= self.fanout {
            let victim = rng.gen_range(0..slot.len());
            slot[victim] = entry;
        } else {
            slot.push(entry);
        }
    }

    /// Picks a uniformly random reference at `level`, if any.
    pub fn random_at<R: Rng + ?Sized>(&self, level: usize, rng: &mut R) -> Option<RoutingEntry> {
        self.level(level).choose(rng).copied()
    }

    /// Removes every reference to the given peer (used when a peer is
    /// detected as failed).  Returns the number of removed references.
    pub fn remove_peer(&mut self, peer: PeerId) -> usize {
        let mut removed = 0;
        for level in &mut self.levels {
            let before = level.len();
            level.retain(|e| e.peer != peer);
            removed += before - level.len();
        }
        removed
    }

    /// All referenced peers (with duplicates across levels removed).
    pub fn known_peers(&self) -> Vec<PeerId> {
        let mut peers: Vec<PeerId> = self.levels.iter().flatten().map(|e| e.peer).collect();
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    /// Iterator over `(level, entry)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (usize, &RoutingEntry)> {
        self.levels
            .iter()
            .enumerate()
            .flat_map(|(lvl, entries)| entries.iter().map(move |e| (lvl, e)))
    }

    /// Checks the structural routing invariant against the owner's path:
    /// every entry at level `i` must reference a path that shares the first
    /// `i` bits with `own_path` and differs at bit `i`.
    pub fn is_consistent_with(&self, own_path: &Path) -> bool {
        for (level, entry) in self.entries() {
            if level >= own_path.len() {
                return false;
            }
            if entry.path.len() <= level {
                return false;
            }
            if entry.path.common_prefix_len(own_path) < level {
                return false;
            }
            if entry.path.bit(level) == own_path.bit(level) {
                return false;
            }
        }
        true
    }

    /// Truncates the table to the first `levels` levels (used when a peer
    /// shortens its path, e.g. when re-balancing).
    pub fn truncate(&mut self, levels: usize) {
        self.levels.truncate(levels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(id: u64, path: &str) -> RoutingEntry {
        RoutingEntry {
            peer: PeerId(id),
            path: Path::parse(path),
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rt = RoutingTable::new(2);
        rt.add(0, entry(1, "1"), &mut rng);
        rt.add(1, entry(2, "01"), &mut rng);
        assert_eq!(rt.num_levels(), 2);
        assert_eq!(rt.num_entries(), 2);
        assert_eq!(rt.level(0)[0].peer, PeerId(1));
        assert_eq!(rt.level(5), &[]);
    }

    #[test]
    fn duplicates_ignored_and_fanout_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rt = RoutingTable::new(2);
        rt.add(0, entry(1, "1"), &mut rng);
        rt.add(0, entry(1, "1"), &mut rng);
        assert_eq!(rt.num_entries(), 1);
        rt.add(0, entry(2, "1"), &mut rng);
        rt.add(0, entry(3, "11"), &mut rng);
        // fanout 2: still two entries, one of which was replaced
        assert_eq!(rt.level(0).len(), 2);
        // unbounded table keeps everything
        let mut unbounded = RoutingTable::new(0);
        for i in 0..10 {
            unbounded.add(0, entry(i, "1"), &mut rng);
        }
        assert_eq!(unbounded.num_entries(), 10);
    }

    #[test]
    fn random_selection_and_removal() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut rt = RoutingTable::new(0);
        rt.add(0, entry(1, "1"), &mut rng);
        rt.add(0, entry(2, "1"), &mut rng);
        let picked = rt.random_at(0, &mut rng).unwrap();
        assert!(picked.peer == PeerId(1) || picked.peer == PeerId(2));
        assert!(rt.random_at(3, &mut rng).is_none());
        assert_eq!(rt.remove_peer(PeerId(1)), 1);
        assert_eq!(rt.known_peers(), vec![PeerId(2)]);
    }

    #[test]
    fn consistency_invariant() {
        let mut rng = StdRng::seed_from_u64(4);
        let own = Path::parse("010");
        let mut rt = RoutingTable::new(0);
        rt.add(0, entry(1, "1"), &mut rng);
        rt.add(1, entry(2, "00"), &mut rng);
        rt.add(2, entry(3, "0111"), &mut rng);
        assert!(rt.is_consistent_with(&own));
        // wrong bit at level 1
        let mut bad = RoutingTable::new(0);
        bad.add(1, entry(4, "01"), &mut rng);
        assert!(!bad.is_consistent_with(&own));
        // level beyond own path length
        let mut too_deep = RoutingTable::new(0);
        too_deep.add(3, entry(5, "0101"), &mut rng);
        assert!(!too_deep.is_consistent_with(&own));
    }

    #[test]
    fn truncate_drops_deep_levels() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut rt = RoutingTable::new(0);
        rt.add(0, entry(1, "1"), &mut rng);
        rt.add(1, entry(2, "01"), &mut rng);
        rt.truncate(1);
        assert_eq!(rt.num_levels(), 1);
        assert_eq!(rt.num_entries(), 1);
    }
}
