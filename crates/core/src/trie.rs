//! Explicit representation of the canonical trie induced by key space
//! bisection.
//!
//! The overlay itself is *distributed*: the trie only exists implicitly in
//! the union of the peers' paths and routing tables.  For analysis (load
//! balance metrics, reference partitioning, test oracles) it is convenient
//! to materialise the trie explicitly.

use crate::path::Path;
use std::collections::BTreeMap;

/// A materialised trie over partition paths, mapping each leaf partition to
/// an associated value (e.g. the number of peers or the data load).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionTrie<T> {
    leaves: BTreeMap<Path, T>,
}

impl<T> PartitionTrie<T> {
    /// Creates an empty trie (no leaves at all).
    pub fn new() -> Self {
        PartitionTrie {
            leaves: BTreeMap::new(),
        }
    }

    /// Inserts (or replaces) a leaf.
    ///
    /// Callers are responsible for keeping the leaf set prefix-free; this is
    /// validated by [`PartitionTrie::is_prefix_free`].
    pub fn insert(&mut self, path: Path, value: T) -> Option<T> {
        self.leaves.insert(path, value)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the trie has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Iterator over `(path, value)` leaves in canonical (key space) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Path, &T)> {
        self.leaves.iter()
    }

    /// Returns the value stored for an exact leaf path.
    pub fn get(&self, path: &Path) -> Option<&T> {
        self.leaves.get(path)
    }

    /// The set of leaf paths.
    pub fn paths(&self) -> Vec<Path> {
        self.leaves.keys().copied().collect()
    }

    /// Finds the leaf whose partition covers the given path (i.e. the leaf
    /// that is a prefix of `path`), if any.
    pub fn covering_leaf(&self, path: &Path) -> Option<(&Path, &T)> {
        self.leaves.iter().find(|(leaf, _)| leaf.is_prefix_of(path))
    }

    /// Whether no leaf is a prefix of another (a valid partition of the key
    /// space never has nested leaves).
    pub fn is_prefix_free(&self) -> bool {
        let paths: Vec<&Path> = self.leaves.keys().collect();
        for (i, a) in paths.iter().enumerate() {
            for b in paths.iter().skip(i + 1) {
                if a.is_prefix_of(b) || b.is_prefix_of(a) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the leaves exactly cover the whole key space, i.e. the total
    /// width of all leaves is 1 and they are prefix-free.
    pub fn is_complete_partition(&self) -> bool {
        if !self.is_prefix_free() {
            return false;
        }
        let total: f64 = self.leaves.keys().map(|p| p.width()).sum();
        (total - 1.0).abs() < 1e-9
    }

    /// Maximum leaf depth.
    pub fn depth(&self) -> usize {
        self.leaves.keys().map(|p| p.len()).max().unwrap_or(0)
    }

    /// Mean leaf depth (the expected search path length if leaves were
    /// addressed uniformly).
    pub fn mean_depth(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        self.leaves.keys().map(|p| p.len() as f64).sum::<f64>() / self.leaves.len() as f64
    }
}

/// Builds a histogram trie from a list of peer paths: each distinct path
/// becomes a leaf whose value is the number of peers with that path.
pub fn peer_count_trie<'a, I: IntoIterator<Item = &'a Path>>(paths: I) -> PartitionTrie<usize> {
    let mut trie = PartitionTrie::new();
    for p in paths {
        match trie.leaves.get_mut(p) {
            Some(n) => *n += 1,
            None => {
                trie.insert(*p, 1);
            }
        }
    }
    trie
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie_of(paths: &[&str]) -> PartitionTrie<usize> {
        let mut t = PartitionTrie::new();
        for (i, p) in paths.iter().enumerate() {
            t.insert(Path::parse(p), i);
        }
        t
    }

    #[test]
    fn prefix_freedom_detection() {
        assert!(trie_of(&["00", "01", "1"]).is_prefix_free());
        assert!(!trie_of(&["0", "01", "1"]).is_prefix_free());
    }

    #[test]
    fn complete_partition_detection() {
        assert!(trie_of(&["00", "01", "1"]).is_complete_partition());
        assert!(!trie_of(&["00", "1"]).is_complete_partition());
        assert!(!trie_of(&["0", "01", "1"]).is_complete_partition());
    }

    #[test]
    fn covering_leaf_lookup() {
        let t = trie_of(&["00", "01", "1"]);
        let (leaf, _) = t.covering_leaf(&Path::parse("011")).unwrap();
        assert_eq!(*leaf, Path::parse("01"));
        assert!(t.covering_leaf(&Path::parse("0")).is_none());
    }

    #[test]
    fn depth_statistics() {
        let t = trie_of(&["00", "01", "1"]);
        assert_eq!(t.depth(), 2);
        assert!((t.mean_depth() - 5.0 / 3.0).abs() < 1e-12);
        let empty: PartitionTrie<usize> = PartitionTrie::new();
        assert_eq!(empty.depth(), 0);
        assert_eq!(empty.mean_depth(), 0.0);
    }

    #[test]
    fn peer_count_histogram() {
        let paths = [
            Path::parse("00"),
            Path::parse("00"),
            Path::parse("01"),
            Path::parse("1"),
            Path::parse("1"),
            Path::parse("1"),
        ];
        let t = peer_count_trie(paths.iter());
        assert_eq!(t.get(&Path::parse("00")), Some(&2));
        assert_eq!(t.get(&Path::parse("01")), Some(&1));
        assert_eq!(t.get(&Path::parse("1")), Some(&3));
        assert_eq!(t.len(), 3);
    }
}
