//! Trie paths (key space partitions).
//!
//! Recursively bisecting the key space `[0, 1)` at binary midpoints induces
//! a canonical trie (Section 2.1 of the paper).  Every partition is
//! identified by the bit sequence of the bisection decisions that lead to
//! it; a peer's *path* is the bit sequence of the partition it is
//! responsible for.  `Path` stores such a bit sequence compactly (up to 64
//! bits, which is far deeper than any practical trie: with `n` peers the
//! trie depth is `O(log n)`).

use crate::key::Key;
use std::fmt;

/// Maximum supported path length in bits.
pub const MAX_PATH_LEN: usize = 64;

/// A partition of the key space, i.e. a node of the canonical trie,
/// identified by the bit string of bisection decisions from the root.
///
/// The empty path denotes the whole key space `[0, 1)`.  Appending bit `0`
/// selects the lower half of the current interval, bit `1` the upper half.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Path {
    /// Bits stored left-aligned: bit `i` of the path is bit `63 - i` of
    /// `bits`.  Unused low bits are zero, which makes equal-length paths
    /// compare like their intervals.
    bits: u64,
    /// Number of valid bits.
    len: u8,
}

impl Path {
    /// The root path (whole key space).
    pub const ROOT: Path = Path { bits: 0, len: 0 };

    /// Creates an empty (root) path.
    pub fn root() -> Path {
        Path::ROOT
    }

    /// Builds a path from a slice of bits (`false` = 0, `true` = 1).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_PATH_LEN`] bits are given.
    pub fn from_bits(bits: &[bool]) -> Path {
        assert!(bits.len() <= MAX_PATH_LEN, "path too long");
        let mut p = Path::ROOT;
        for &b in bits {
            p = p.child(b);
        }
        p
    }

    /// Parses a path from a string of `'0'`/`'1'` characters.
    ///
    /// # Panics
    ///
    /// Panics on any other character or if the string is longer than
    /// [`MAX_PATH_LEN`].
    pub fn parse(s: &str) -> Path {
        let bits: Vec<bool> = s
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid path character {other:?}"),
            })
            .collect();
        Path::from_bits(&bits)
    }

    /// Path length (trie depth) in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this is the root path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i` of the path.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len(),
            "path bit {i} out of range (len {})",
            self.len
        );
        (self.bits >> (63 - i)) & 1 == 1
    }

    /// Returns the child path obtained by appending `bit`.
    ///
    /// # Panics
    ///
    /// Panics if the path is already [`MAX_PATH_LEN`] bits long.
    pub fn child(&self, bit: bool) -> Path {
        assert!(self.len() < MAX_PATH_LEN, "path overflow");
        let mut bits = self.bits;
        if bit {
            bits |= 1 << (63 - self.len());
        }
        Path {
            bits,
            len: self.len + 1,
        }
    }

    /// Returns the parent path, or `None` for the root.
    pub fn parent(&self) -> Option<Path> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        let mask = if len == 0 {
            0
        } else {
            !0u64 << (64 - len as u32)
        };
        Some(Path {
            bits: self.bits & mask,
            len,
        })
    }

    /// Returns the sibling path (same parent, last bit flipped), or `None`
    /// for the root.
    pub fn sibling(&self) -> Option<Path> {
        if self.len == 0 {
            return None;
        }
        Some(Path {
            bits: self.bits ^ (1 << (64 - self.len as u32)),
            len: self.len,
        })
    }

    /// The prefix of this path consisting of its first `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> Path {
        assert!(n <= self.len(), "prefix longer than path");
        let mask = if n == 0 { 0 } else { !0u64 << (64 - n as u32) };
        Path {
            bits: self.bits & mask,
            len: n as u8,
        }
    }

    /// Whether `self` is a prefix of `other` (every path is a prefix of
    /// itself).
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        if self.len > other.len {
            return false;
        }
        other.prefix(self.len()).bits == self.bits
    }

    /// Length of the longest common prefix of two paths, in bits.
    pub fn common_prefix_len(&self, other: &Path) -> usize {
        let max = self.len().min(other.len());
        let diff = self.bits ^ other.bits;
        let lead = diff.leading_zeros() as usize;
        lead.min(max)
    }

    /// Whether the partition identified by this path contains `key`.
    pub fn covers(&self, key: Key) -> bool {
        for i in 0..self.len() {
            if key.bit(i) != self.bit(i) {
                return false;
            }
        }
        true
    }

    /// The half-open key interval `[lower, upper)` covered by this
    /// partition, as fractions of the key space.
    pub fn interval(&self) -> (f64, f64) {
        let width = 2f64.powi(-(self.len() as i32));
        let lower = (self.bits >> (64 - self.len().max(1) as u32)) as f64 * width;
        if self.is_empty() {
            (0.0, 1.0)
        } else {
            (lower, lower + width)
        }
    }

    /// The smallest key covered by this partition.
    pub fn lower_key(&self) -> Key {
        Key(self.bits)
    }

    /// The largest key covered by this partition.
    pub fn upper_key(&self) -> Key {
        if self.len == 0 {
            Key::MAX
        } else if self.len as usize >= MAX_PATH_LEN {
            Key(self.bits)
        } else {
            Key(self.bits | (!0u64 >> self.len as u32))
        }
    }

    /// Fraction of the key space covered by this partition (`2^-len`).
    pub fn width(&self) -> f64 {
        2f64.powi(-(self.len() as i32))
    }

    /// Returns the path truncated or extended (with `0` bits) to the given
    /// length.  Extension with `0` bits selects the lowest descendant, which
    /// is occasionally useful for canonical ordering of partitions.
    pub fn resized(&self, len: usize) -> Path {
        assert!(len <= MAX_PATH_LEN);
        if len <= self.len() {
            self.prefix(len)
        } else {
            Path {
                bits: self.bits,
                len: len as u8,
            }
        }
    }

    /// Iterator over the bits of the path.
    pub fn bits_iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len()).map(move |i| self.bit(i))
    }

    /// Whether the two paths identify disjoint partitions (neither is a
    /// prefix of the other).
    pub fn disjoint_with(&self, other: &Path) -> bool {
        !self.is_prefix_of(other) && !other.is_prefix_of(self)
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path(\"{self}\")")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        for b in self.bits_iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_covers_everything() {
        assert!(Path::root().covers(Key::MIN));
        assert!(Path::root().covers(Key::MAX));
        assert!(Path::root().covers(Key::from_fraction(0.37)));
        assert_eq!(Path::root().interval(), (0.0, 1.0));
    }

    #[test]
    fn child_intervals_bisect() {
        let left = Path::root().child(false);
        let right = Path::root().child(true);
        assert_eq!(left.interval(), (0.0, 0.5));
        assert_eq!(right.interval(), (0.5, 1.0));
        assert!(left.covers(Key::from_fraction(0.25)));
        assert!(!left.covers(Key::from_fraction(0.75)));
        assert!(right.covers(Key::from_fraction(0.75)));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "0101", "111000111", "0000000000"] {
            let p = Path::parse(s);
            assert_eq!(format!("{p}"), s);
        }
        assert_eq!(format!("{}", Path::root()), "ε");
    }

    #[test]
    fn parent_sibling_prefix() {
        let p = Path::parse("0110");
        assert_eq!(p.parent().unwrap(), Path::parse("011"));
        assert_eq!(p.sibling().unwrap(), Path::parse("0111"));
        assert_eq!(p.prefix(2), Path::parse("01"));
        assert!(Path::parse("01").is_prefix_of(&p));
        assert!(!Path::parse("10").is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
        assert!(Path::root().parent().is_none());
        assert!(Path::root().sibling().is_none());
    }

    #[test]
    fn common_prefix() {
        let a = Path::parse("010110");
        let b = Path::parse("010011");
        assert_eq!(a.common_prefix_len(&b), 3);
        assert_eq!(a.common_prefix_len(&a), 6);
        assert_eq!(Path::root().common_prefix_len(&a), 0);
    }

    #[test]
    fn lower_upper_keys_bound_partition() {
        let p = Path::parse("101");
        let (lo, hi) = p.interval();
        assert_eq!(lo, 0.625);
        assert_eq!(hi, 0.75);
        assert!(p.covers(p.lower_key()));
        assert!(p.covers(p.upper_key()));
        assert!((p.lower_key().as_fraction() - lo).abs() < 1e-12);
        // upper_key is hi - 2^-64, which rounds to hi in f64
        assert!(p.upper_key().as_fraction() <= hi);
        assert!(p.upper_key() < Key::from_fraction(hi));
    }

    #[test]
    fn covers_matches_interval() {
        let p = Path::parse("0101");
        let (lo, hi) = p.interval();
        for i in 0..1000 {
            let x = i as f64 / 1000.0;
            let k = Key::from_fraction(x);
            assert_eq!(p.covers(k), x >= lo && x < hi, "x = {x}");
        }
    }

    #[test]
    fn disjointness() {
        assert!(Path::parse("01").disjoint_with(&Path::parse("10")));
        assert!(!Path::parse("01").disjoint_with(&Path::parse("010")));
        assert!(!Path::root().disjoint_with(&Path::parse("1")));
    }

    #[test]
    fn resized_extends_and_truncates() {
        let p = Path::parse("101");
        assert_eq!(p.resized(1), Path::parse("1"));
        assert_eq!(p.resized(5), Path::parse("10100"));
        assert_eq!(p.resized(3), p);
    }
}
