//! Peer state: everything a single participant of the overlay stores
//! locally (its path, data, routing table and replica list).

use crate::key::DataEntry;
use crate::path::Path;
use crate::routing::{PeerId, RoutingEntry, RoutingTable};
use crate::store::KeyStore;
use rand::Rng;

/// Complete local state of one peer.
///
/// This struct is deliberately free of any networking concerns so that it
/// can be driven either by the deterministic simulator (`pgrid-sim`) or by
/// the threaded in-process deployment runtime (`pgrid-net`).
#[derive(Clone, Debug)]
pub struct PeerState {
    /// This peer's identifier.
    pub id: PeerId,
    /// The peer's current path, i.e. the key space partition it is
    /// responsible for.  During construction the path grows bit by bit.
    pub path: Path,
    /// The locally stored index entries.
    pub store: KeyStore,
    /// The prefix-routing table.
    pub routing: RoutingTable,
    /// Known replicas: peers believed to be responsible for the same
    /// partition (structural replication, Section 2.1).
    pub replicas: Vec<PeerId>,
    /// Whether this peer is currently online (used by churn models).
    pub online: bool,
}

impl PeerState {
    /// Creates a fresh peer at the root path with an empty store.
    pub fn new(id: PeerId, routing_fanout: usize) -> PeerState {
        PeerState {
            id,
            path: Path::root(),
            store: KeyStore::new(),
            routing: RoutingTable::new(routing_fanout),
            replicas: Vec::new(),
            online: true,
        }
    }

    /// Creates a peer pre-loaded with initial data entries.
    pub fn with_entries<I: IntoIterator<Item = DataEntry>>(
        id: PeerId,
        routing_fanout: usize,
        entries: I,
    ) -> PeerState {
        let mut p = PeerState::new(id, routing_fanout);
        p.store = KeyStore::from_entries(entries);
        p
    }

    /// Current trie depth of the peer.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Number of locally stored entries that actually belong to the peer's
    /// current partition.
    pub fn responsible_load(&self) -> usize {
        self.store.count_in(&self.path)
    }

    /// Extends the peer's path by one bit, records a routing reference to
    /// `other` (which took the opposite bit), and drops the entries that now
    /// belong to the other side, returning them so the caller can ship them
    /// to `other`.
    ///
    /// This is "possibility 1" of Figure 2: exchange content, split the key
    /// space, update the routing table.
    pub fn split_towards<R: Rng + ?Sized>(
        &mut self,
        bit: bool,
        other: RoutingEntry,
        rng: &mut R,
    ) -> Vec<DataEntry> {
        let level = self.path.len();
        self.path = self.path.child(bit);
        self.routing.add(level, other, rng);
        // Replica relationships do not survive a split: the former replicas
        // may end up on either side.  They will be re-discovered during the
        // next interactions at the new level.
        self.replicas.clear();
        self.store.split_retain(&self.path)
    }

    /// Records `other` as a replica of this peer (same partition) and
    /// returns the entries `other` is missing from our store, so the caller
    /// can ship them (anti-entropy push).
    ///
    /// This is "possibility 2" of Figure 2: become replicas and reconcile
    /// content.
    pub fn add_replica(&mut self, other: PeerId, other_store: &KeyStore) -> Vec<DataEntry> {
        if other != self.id && !self.replicas.contains(&other) {
            self.replicas.push(other);
        }
        other_store.missing_from(&self.store)
    }

    /// Adds a routing reference at the level where `other_path` diverges
    /// from this peer's path.  Returns `true` if a reference could be placed
    /// (i.e. the paths actually diverge within this peer's path length).
    pub fn learn_reference<R: Rng + ?Sized>(
        &mut self,
        other: PeerId,
        other_path: Path,
        rng: &mut R,
    ) -> bool {
        let cpl = self.path.common_prefix_len(&other_path);
        if cpl >= self.path.len() || cpl >= other_path.len() {
            return false;
        }
        self.routing.add(
            cpl,
            RoutingEntry {
                peer: other,
                path: other_path,
            },
            rng,
        );
        true
    }

    /// Whether two peers currently belong to the same partition, or one's
    /// path is a prefix of the other's (the condition under which the
    /// divide/replicate interactions of Figure 2 are possible).
    pub fn shares_partition_with(&self, other_path: &Path) -> bool {
        self.path.is_prefix_of(other_path) || other_path.is_prefix_of(&self.path)
    }

    /// Structural sanity check used by tests: the routing table must be
    /// consistent with the current path and all stored entries that the peer
    /// is responsible for must be covered by the path.
    pub fn invariants_hold(&self) -> bool {
        self.routing.is_consistent_with(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{DataId, Key};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entries(fracs: &[f64]) -> Vec<DataEntry> {
        fracs
            .iter()
            .enumerate()
            .map(|(i, &x)| DataEntry::new(Key::from_fraction(x), DataId(i as u64)))
            .collect()
    }

    #[test]
    fn new_peer_is_at_root() {
        let p = PeerState::new(PeerId(1), 3);
        assert_eq!(p.path, Path::root());
        assert_eq!(p.depth(), 0);
        assert!(p.online);
        assert!(p.invariants_hold());
    }

    #[test]
    fn split_moves_entries_and_adds_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = PeerState::with_entries(PeerId(1), 3, entries(&[0.1, 0.2, 0.6, 0.9]));
        let other = RoutingEntry {
            peer: PeerId(2),
            path: Path::parse("1"),
        };
        let shipped = p.split_towards(false, other, &mut rng);
        assert_eq!(p.path, Path::parse("0"));
        assert_eq!(p.store.len(), 2);
        assert_eq!(shipped.len(), 2);
        assert!(shipped.iter().all(|e| e.key.as_fraction() >= 0.5));
        assert_eq!(p.routing.level(0)[0].peer, PeerId(2));
        assert!(p.invariants_hold());
    }

    #[test]
    fn replica_reconciliation_returns_missing_entries() {
        let mut a = PeerState::with_entries(PeerId(1), 3, entries(&[0.1, 0.2]));
        let b = PeerState::with_entries(PeerId(2), 3, entries(&[0.2, 0.3]));
        // note: ids differ, so the only shared entry is none; `missing` is
        // what b lacks relative to a, i.e. entries of a not in b.
        let to_b = a.add_replica(b.id, &b.store);
        assert!(a.replicas.contains(&PeerId(2)));
        assert_eq!(to_b.len(), 2);
        // adding the same replica twice does not duplicate it
        a.add_replica(b.id, &b.store);
        assert_eq!(a.replicas.len(), 1);
    }

    #[test]
    fn learn_reference_places_entry_at_divergence_level() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = PeerState::new(PeerId(1), 3);
        p.path = Path::parse("010");
        assert!(p.learn_reference(PeerId(2), Path::parse("011"), &mut rng));
        assert_eq!(p.routing.level(2)[0].peer, PeerId(2));
        // same partition: nothing to learn
        assert!(!p.learn_reference(PeerId(3), Path::parse("010"), &mut rng));
        // prefix of us: nothing to learn either
        assert!(!p.learn_reference(PeerId(4), Path::parse("01"), &mut rng));
        assert!(p.invariants_hold());
    }

    #[test]
    fn shares_partition_semantics() {
        let mut p = PeerState::new(PeerId(1), 3);
        p.path = Path::parse("01");
        assert!(p.shares_partition_with(&Path::parse("01")));
        assert!(p.shares_partition_with(&Path::parse("011")));
        assert!(p.shares_partition_with(&Path::parse("0")));
        assert!(!p.shares_partition_with(&Path::parse("00")));
        assert!(!p.shares_partition_with(&Path::parse("1")));
    }
}
