//! Index identifiers: one peer population, several logical indexes.
//!
//! The paper builds *one* trie over *one* key extraction function, but the
//! same peer population can host several independent indexes at once (e.g.
//! two different term-extraction schemes over the same document corpus, or
//! the heterogeneous schemas of peer-database systems such as HepToX).
//! Every overlay operation that touches index state — replication,
//! construction exchanges, queries — is therefore qualified by an
//! [`IndexId`]: each index gets its own per-peer path, store and routing
//! table, while the peer population, its liveness and its unstructured
//! bootstrap overlay are shared.

/// Identifier of one logical index hosted by the peer population.
///
/// The *primary* index ([`IndexId::PRIMARY`], id `0`) is the index every
/// engine hosts implicitly — single-index deployments never mention any
/// other.  Secondary indexes are registered explicitly and their protocol
/// traffic is enveloped on the wire, so a single-index deployment's byte
/// stream is unchanged by the existence of this type.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u16);

impl IndexId {
    /// The implicit index of every overlay engine.
    pub const PRIMARY: IndexId = IndexId(0);

    /// Whether this is the primary index.
    pub fn is_primary(self) -> bool {
        self == IndexId::PRIMARY
    }
}

impl std::fmt::Display for IndexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "index{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_zero_and_default() {
        assert_eq!(IndexId::PRIMARY, IndexId(0));
        assert_eq!(IndexId::default(), IndexId::PRIMARY);
        assert!(IndexId::PRIMARY.is_primary());
        assert!(!IndexId(3).is_primary());
        assert_eq!(IndexId(3).to_string(), "index3");
    }
}
