//! # pgrid-sim
//!
//! Whole-system simulator of the decentralized P-Grid construction process
//! of *"Indexing data-oriented overlay networks"* (VLDB 2005).
//!
//! The simulator drives [`pgrid_core`] peer states through the paper's
//! construction protocol — unstructured-overlay bootstrap, initiation vote,
//! replication phase, recursive adaptive-eager partitioning with
//! split/replicate/refer interactions, and back-off based termination — and
//! measures the quantities reported in the paper's Figure 6: load-balance
//! deviation from the optimal (reference) partitioning, interactions per
//! peer and data keys moved per peer.
//!
//! Construction rounds execute as conflict-free interaction batches across
//! worker threads ([`config::SimConfig::n_threads`]); per-peer
//! counter-derived RNG streams make the result bit-identical for every
//! thread count.  A sequential-join baseline
//! constructor is provided for the latency/message complexity comparison of
//! Section 4.3, and query evaluation reproduces the search statistics of
//! Section 5.2.
//!
//! ```
//! use pgrid_sim::prelude::*;
//!
//! let overlay = construct(&SimConfig { n_peers: 64, seed: 1, ..SimConfig::default() });
//! assert!(overlay.max_depth() >= 1);
//! assert!(overlay.metrics.interactions > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod construction;
pub mod metrics;
mod parallel;
pub mod query;
pub mod runner;
mod schedule;
pub mod sequential;
pub mod unstructured;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::config::{ConstructionStrategy, SimConfig};
    pub use crate::construction::{construct, ConstructedOverlay, SimNetwork};
    pub use crate::metrics::{ConstructionMetrics, MetricsDelta};
    pub use crate::query::{data_availability, run_queries, QueryStats};
    pub use crate::runner::{
        population_sweep, replication_sweep, run_repeated, sample_size_sweep, theory_vs_heuristics,
        ConstructionResult,
    };
    pub use crate::sequential::{construct_sequentially, SequentialOutcome};
    pub use crate::unstructured::{run_initiation_vote, UnstructuredOverlay, VoteOutcome};
}
