//! Query evaluation on a constructed overlay.
//!
//! Used for the search-performance statistics of Section 5.2: number of
//! query hops (≈ half the mean path length), success rate (95–100% even
//! under churn), and range-query behaviour.

use crate::construction::ConstructedOverlay;
use pgrid_core::histogram::LogHistogram;
use pgrid_core::routing::PeerId;
use pgrid_core::search::{lookup, range_query, LookupStatus};
use pgrid_workload::queries::Query;
use rand::Rng;

/// Default capacity of the per-query hop sample ring of [`QueryStats`].
pub const DEFAULT_HOP_SAMPLE_CAP: usize = 256;

/// Aggregated statistics of a query batch.
///
/// Hop distributions are kept in a fixed-memory [`LogHistogram`] plus a
/// capped ring of recent raw samples, so arbitrarily large batches cannot
/// grow the stats without bound (the same discipline `pgrid_net` applies to
/// its latency accounting).
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// Queries issued.
    pub issued: usize,
    /// Queries that reached a responsible peer (and, for lookups on existing
    /// keys, returned at least one entry).
    pub successful: usize,
    /// Total hops over all queries.
    pub total_hops: usize,
    /// Maximum hops of any single query.
    pub max_hops: usize,
    /// Hop distribution over all queries.
    pub hops: LogHistogram,
    /// The most recent queries' hop counts, capped at
    /// [`QueryStats::sample_cap`].
    pub hop_samples: std::collections::VecDeque<usize>,
    /// Capacity of the sample ring (`0` disables it).
    pub sample_cap: usize,
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats {
            issued: 0,
            successful: 0,
            total_hops: 0,
            max_hops: 0,
            hops: LogHistogram::new(),
            hop_samples: std::collections::VecDeque::new(),
            sample_cap: DEFAULT_HOP_SAMPLE_CAP,
        }
    }
}

impl QueryStats {
    /// Fraction of successful queries.
    pub fn success_rate(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.successful as f64 / self.issued as f64
    }

    /// Mean hops per query.
    pub fn mean_hops(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.total_hops as f64 / self.issued as f64
    }

    fn record_hops(&mut self, hops: usize) {
        self.total_hops += hops;
        self.max_hops = self.max_hops.max(hops);
        self.hops.record(hops as u64);
        if self.sample_cap > 0 {
            if self.hop_samples.len() == self.sample_cap {
                self.hop_samples.pop_front();
            }
            self.hop_samples.push_back(hops);
        }
    }
}

/// Runs a batch of queries against the overlay, each starting from a random
/// online peer.  A lookup counts as successful when routing reaches a
/// responsible peer; a range query when the traversal completes.
pub fn run_queries<R: Rng + ?Sized>(
    overlay: &ConstructedOverlay,
    queries: &[Query],
    rng: &mut R,
) -> QueryStats {
    let online: Vec<usize> = overlay
        .peers
        .iter()
        .enumerate()
        .filter(|(_, p)| p.online)
        .map(|(i, _)| i)
        .collect();
    let mut stats = QueryStats::default();
    if online.is_empty() {
        stats.issued = queries.len();
        return stats;
    }
    for query in queries {
        let start = PeerId(online[rng.gen_range(0..online.len())] as u64);
        stats.issued += 1;
        match query {
            Query::Lookup(key) => {
                let res = lookup(overlay, start, *key, rng);
                stats.record_hops(res.hops);
                if matches!(res.status, LookupStatus::Found { .. }) {
                    stats.successful += 1;
                }
            }
            Query::Range(lo, hi) => {
                let res = range_query(overlay, start, *lo, *hi, rng);
                stats.record_hops(res.hops);
                if res.complete {
                    stats.successful += 1;
                }
            }
        }
    }
    stats
}

/// Fraction of the original entries that can actually be retrieved by
/// looking up their key (data availability, as opposed to pure routing
/// success).
pub fn data_availability<R: Rng + ?Sized>(
    overlay: &ConstructedOverlay,
    sample: usize,
    rng: &mut R,
) -> f64 {
    if overlay.original_entries.is_empty() {
        return 1.0;
    }
    let online: Vec<usize> = overlay
        .peers
        .iter()
        .enumerate()
        .filter(|(_, p)| p.online)
        .map(|(i, _)| i)
        .collect();
    if online.is_empty() {
        return 0.0;
    }
    let mut found = 0usize;
    let total = sample.min(overlay.original_entries.len());
    for _ in 0..total {
        let entry = overlay.original_entries[rng.gen_range(0..overlay.original_entries.len())];
        let start = PeerId(online[rng.gen_range(0..online.len())] as u64);
        let res = lookup(overlay, start, entry.key, rng);
        if res.entries.contains(&entry) {
            found += 1;
        }
    }
    found as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::construction::construct;
    use pgrid_workload::queries::{generate_queries, QueryWorkloadConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn overlay() -> ConstructedOverlay {
        construct(&SimConfig {
            n_peers: 128,
            seed: 11,
            ..SimConfig::default()
        })
    }

    #[test]
    fn lookups_succeed_on_a_healthy_overlay() {
        let overlay = overlay();
        let mut rng = StdRng::seed_from_u64(1);
        let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
        let queries = generate_queries(
            &QueryWorkloadConfig {
                count: 300,
                range_fraction: 0.0,
                existing_fraction: 1.0,
                ..QueryWorkloadConfig::default()
            },
            &keys,
            &mut rng,
        );
        let stats = run_queries(&overlay, &queries, &mut rng);
        assert_eq!(stats.issued, 300);
        assert!(
            stats.success_rate() > 0.95,
            "success {}",
            stats.success_rate()
        );
        assert!(stats.mean_hops() <= overlay.mean_depth() + 1.0);
    }

    #[test]
    fn mean_hops_is_about_half_the_mean_path_length() {
        // Section 5.2: "the number of query hops per query is approx. half
        // of the mean path length".
        let overlay = overlay();
        let mut rng = StdRng::seed_from_u64(2);
        let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
        let queries = generate_queries(
            &QueryWorkloadConfig {
                count: 500,
                range_fraction: 0.0,
                existing_fraction: 1.0,
                ..QueryWorkloadConfig::default()
            },
            &keys,
            &mut rng,
        );
        let stats = run_queries(&overlay, &queries, &mut rng);
        let ratio = stats.mean_hops() / overlay.mean_depth().max(1e-9);
        assert!(
            ratio > 0.25 && ratio < 0.95,
            "hops/path ratio {ratio} outside the expected band"
        );
    }

    #[test]
    fn range_queries_collect_entries_in_order() {
        let overlay = overlay();
        let mut rng = StdRng::seed_from_u64(3);
        let queries = vec![Query::Range(
            pgrid_core::key::Key::from_fraction(0.2),
            pgrid_core::key::Key::from_fraction(0.4),
        )];
        let stats = run_queries(&overlay, &queries, &mut rng);
        assert_eq!(stats.issued, 1);
        assert!(stats.successful == 1, "range query should complete");
    }

    #[test]
    fn hop_accounting_is_bounded() {
        let overlay = overlay();
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
        let queries = generate_queries(
            &QueryWorkloadConfig {
                count: DEFAULT_HOP_SAMPLE_CAP + 100,
                range_fraction: 0.0,
                existing_fraction: 1.0,
                ..QueryWorkloadConfig::default()
            },
            &keys,
            &mut rng,
        );
        let stats = run_queries(&overlay, &queries, &mut rng);
        assert_eq!(stats.issued, DEFAULT_HOP_SAMPLE_CAP + 100);
        // The histogram sees every query; the raw ring stays capped.
        assert_eq!(stats.hops.total() as usize, stats.issued);
        assert_eq!(stats.hop_samples.len(), DEFAULT_HOP_SAMPLE_CAP);
        assert_eq!(stats.hops.sum() as usize, stats.total_hops);
        assert_eq!(stats.hops.max() as usize, stats.max_hops);
    }

    mod range_parity {
        use super::*;
        use pgrid_core::key::Key;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// One shared overlay for all proptest cases (construction is the
        /// expensive part; the properties only read it).
        fn shared_overlay() -> &'static ConstructedOverlay {
            static OVERLAY: OnceLock<ConstructedOverlay> = OnceLock::new();
            OVERLAY.get_or_init(|| {
                construct(&SimConfig {
                    n_peers: 128,
                    seed: 11,
                    ..SimConfig::default()
                })
            })
        }

        /// The corpus keys in `[lo, hi]` that *every* online covering
        /// replica stores.  On an emergent overlay replicas may diverge, so
        /// this — not the full corpus slice — is the provable completeness
        /// bound of a single-replica-per-partition range walk.
        fn certainly_stored(overlay: &ConstructedOverlay, lo: Key, hi: Key) -> Vec<Key> {
            overlay
                .original_entries
                .iter()
                .map(|e| e.key)
                .filter(|&k| lo <= k && k <= hi)
                .filter(|&k| {
                    overlay
                        .peers
                        .iter()
                        .filter(|p| p.online && p.path.covers(k))
                        .all(|p| p.store.contains_key(k))
                })
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            // Parity against brute force on the emergent overlay: sound
            // (nothing outside the corpus slice) and complete up to the
            // certainty bound (every key all covering replicas hold).
            #[test]
            fn prop_sim_range_matches_brute_force(
                a in 0.0f64..1.0,
                b in 0.0f64..1.0,
                start in 0usize..128,
                rng_seed in any::<u64>(),
            ) {
                let overlay = shared_overlay();
                let (lo, hi) = (
                    Key::from_fraction(a.min(b)),
                    Key::from_fraction(a.max(b)),
                );
                let mut rng = StdRng::seed_from_u64(rng_seed);
                let res = range_query(overlay, PeerId(start as u64), lo, hi, &mut rng);
                prop_assert!(res.complete, "healthy overlay walk must complete");
                // Soundness: every returned entry is a corpus entry inside
                // the requested bounds, in key order without duplicates.
                let corpus: std::collections::BTreeSet<_> =
                    overlay.original_entries.iter().copied().collect();
                for entry in &res.entries {
                    prop_assert!(lo <= entry.key && entry.key <= hi);
                    prop_assert!(corpus.contains(entry), "unknown entry {entry:?}");
                }
                prop_assert!(res.entries.windows(2).all(|w| w[0] < w[1]));
                // Completeness: certainly-stored keys must all be returned.
                let got: std::collections::BTreeSet<Key> =
                    res.entries.iter().map(|e| e.key).collect();
                for key in certainly_stored(overlay, lo, hi) {
                    prop_assert!(got.contains(&key), "missing certain key {key:?}");
                }
            }
        }
    }

    #[test]
    fn data_availability_is_high() {
        let overlay = overlay();
        let mut rng = StdRng::seed_from_u64(4);
        let availability = data_availability(&overlay, 300, &mut rng);
        assert!(availability > 0.9, "availability {availability}");
    }

    #[test]
    fn churn_degrades_gracefully() {
        let mut overlay = overlay();
        let mut rng = StdRng::seed_from_u64(5);
        // Take 25% of the peers offline.
        for (i, peer) in overlay.peers.iter_mut().enumerate() {
            if i % 4 == 0 {
                peer.online = false;
            }
        }
        let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
        let queries = generate_queries(
            &QueryWorkloadConfig {
                count: 300,
                range_fraction: 0.0,
                existing_fraction: 1.0,
                ..QueryWorkloadConfig::default()
            },
            &keys,
            &mut rng,
        );
        let stats = run_queries(&overlay, &queries, &mut rng);
        // With n_min ≈ 5 replicas per partition and multiple routing
        // references, a quarter of the peers failing should barely dent the
        // success rate (the paper reports 95–100% under churn).
        assert!(
            stats.success_rate() > 0.85,
            "success {}",
            stats.success_rate()
        );
    }
}
