//! Metrics collected by the construction simulator.

use pgrid_core::exchange::ExchangeTally;

/// Counters accumulated while constructing the overlay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstructionMetrics {
    /// Interactions initiated (one per contacted peer, including refer hops).
    pub interactions: usize,
    /// Interactions that resulted in no state change.
    pub fruitless_interactions: usize,
    /// Number of refer hops performed.
    pub refer_hops: usize,
    /// Number of balanced or unbalanced splits performed (path extensions).
    pub splits: usize,
    /// Number of replicate/reconcile interactions.
    pub replications: usize,
    /// Data keys moved over the network during the replication phase.
    pub replication_keys_moved: usize,
    /// Data keys moved during construction (splits and reconciliation).
    pub construction_keys_moved: usize,
    /// Number of parallel rounds until quiescence (the latency proxy).
    pub rounds: usize,
    /// Per-peer count of interactions initiated.
    pub per_peer_interactions: Vec<usize>,
}

impl ConstructionMetrics {
    /// Creates counters for `n` peers.
    pub fn new(n: usize) -> Self {
        ConstructionMetrics {
            per_peer_interactions: vec![0; n],
            ..ConstructionMetrics::default()
        }
    }

    /// Total keys moved (replication plus construction).
    pub fn total_keys_moved(&self) -> usize {
        self.replication_keys_moved + self.construction_keys_moved
    }

    /// Mean interactions initiated per peer.
    pub fn interactions_per_peer(&self) -> f64 {
        if self.per_peer_interactions.is_empty() {
            return 0.0;
        }
        self.interactions as f64 / self.per_peer_interactions.len() as f64
    }

    /// Mean keys moved per peer.
    pub fn keys_moved_per_peer(&self) -> f64 {
        if self.per_peer_interactions.is_empty() {
            return 0.0;
        }
        self.total_keys_moved() as f64 / self.per_peer_interactions.len() as f64
    }

    /// Folds the counters into a metrics registry under the
    /// `pgrid_construction_*` namespace, so the simulator's run drivers
    /// expose the same registry-backed `/metrics` text as the network
    /// engines.
    pub fn to_registry(&self, registry: &mut pgrid_obs::registry::MetricsRegistry) {
        registry.counter(
            "pgrid_construction_interactions_total",
            "Interactions initiated during construction",
            &[],
            self.interactions as u64,
        );
        registry.counter(
            "pgrid_construction_fruitless_interactions_total",
            "Interactions that produced no state change",
            &[],
            self.fruitless_interactions as u64,
        );
        registry.counter(
            "pgrid_construction_refer_hops_total",
            "Refer hops performed during construction",
            &[],
            self.refer_hops as u64,
        );
        registry.counter(
            "pgrid_construction_splits_total",
            "Balanced or unbalanced splits performed",
            &[],
            self.splits as u64,
        );
        registry.counter(
            "pgrid_construction_replications_total",
            "Replicate/reconcile interactions",
            &[],
            self.replications as u64,
        );
        registry.counter(
            "pgrid_construction_keys_moved_total",
            "Data keys moved over the network",
            &[("phase", "replication")],
            self.replication_keys_moved as u64,
        );
        registry.counter(
            "pgrid_construction_keys_moved_total",
            "Data keys moved over the network",
            &[("phase", "construction")],
            self.construction_keys_moved as u64,
        );
        registry.gauge(
            "pgrid_construction_rounds",
            "Parallel rounds until quiescence (the latency proxy)",
            &[],
            self.rounds as f64,
        );
        registry.gauge(
            "pgrid_construction_interactions_per_peer",
            "Mean interactions initiated per peer",
            &[],
            self.interactions_per_peer(),
        );
    }

    /// Adds one executor delta to the totals.
    pub fn absorb(&mut self, delta: &MetricsDelta) {
        self.interactions += delta.interactions;
        self.fruitless_interactions += delta.fruitless_interactions;
        self.refer_hops += delta.refer_hops;
        self.splits += delta.tally.splits;
        self.replications += delta.tally.replications;
        self.construction_keys_moved += delta.tally.keys_moved;
        for &(initiator, contacts) in &delta.per_initiator {
            self.per_peer_interactions[initiator] += contacts;
        }
    }
}

/// Metric increments accumulated by one executor worker over its share of a
/// batch of interactions.
///
/// Every field is a plain sum (the per-initiator pairs are disjoint because
/// each peer initiates at most once per round), so merging worker deltas in
/// any grouping produces the same totals — the property that makes the
/// parallel constructor's metrics independent of the thread count.
#[derive(Clone, Debug, Default)]
pub struct MetricsDelta {
    /// Interactions initiated (one per contacted peer, including refer hops).
    pub interactions: usize,
    /// Interactions that resulted in no state change.
    pub fruitless_interactions: usize,
    /// Refer hops performed.
    pub refer_hops: usize,
    /// Split/replicate/key-movement totals of the applied exchanges.
    pub tally: ExchangeTally,
    /// `(initiator, contacts)` pairs feeding the per-peer counters.
    pub per_initiator: Vec<(usize, usize)>,
}

impl MetricsDelta {
    /// Adds another worker's delta to this one.
    pub fn merge(&mut self, other: &MetricsDelta) {
        self.interactions += other.interactions;
        self.fruitless_interactions += other.fruitless_interactions;
        self.refer_hops += other.refer_hops;
        self.tally.merge(&other.tally);
        self.per_initiator.extend_from_slice(&other.per_initiator);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_peer_averages() {
        let mut m = ConstructionMetrics::new(4);
        m.interactions = 8;
        m.replication_keys_moved = 20;
        m.construction_keys_moved = 12;
        assert_eq!(m.total_keys_moved(), 32);
        assert!((m.interactions_per_peer() - 2.0).abs() < 1e-12);
        assert!((m.keys_moved_per_peer() - 8.0).abs() < 1e-12);
        let empty = ConstructionMetrics::default();
        assert_eq!(empty.interactions_per_peer(), 0.0);
    }

    #[test]
    fn registry_export_covers_every_counter() {
        let mut m = ConstructionMetrics::new(4);
        m.interactions = 8;
        m.fruitless_interactions = 2;
        m.refer_hops = 3;
        m.splits = 5;
        m.replications = 4;
        m.replication_keys_moved = 20;
        m.construction_keys_moved = 12;
        m.rounds = 9;
        let mut registry = pgrid_obs::registry::MetricsRegistry::default();
        m.to_registry(&mut registry);
        let text = registry.encode();
        assert!(text.contains("pgrid_construction_interactions_total 8"));
        assert!(text.contains("pgrid_construction_splits_total 5"));
        assert!(text.contains("pgrid_construction_keys_moved_total{phase=\"replication\"} 20"));
        assert!(text.contains("pgrid_construction_keys_moved_total{phase=\"construction\"} 12"));
        assert!(text.contains("pgrid_construction_rounds 9"));
        assert!(text.contains("pgrid_construction_interactions_per_peer 2"));
    }

    #[test]
    fn deltas_merge_and_absorb() {
        let mut a = MetricsDelta {
            interactions: 3,
            fruitless_interactions: 1,
            refer_hops: 2,
            per_initiator: vec![(0, 3)],
            ..MetricsDelta::default()
        };
        a.tally.splits = 1;
        a.tally.keys_moved = 7;
        let mut b = MetricsDelta {
            interactions: 2,
            per_initiator: vec![(2, 2)],
            ..MetricsDelta::default()
        };
        b.tally.replications = 1;
        a.merge(&b);
        let mut m = ConstructionMetrics::new(4);
        m.absorb(&a);
        assert_eq!(m.interactions, 5);
        assert_eq!(m.fruitless_interactions, 1);
        assert_eq!(m.refer_hops, 2);
        assert_eq!(m.splits, 1);
        assert_eq!(m.replications, 1);
        assert_eq!(m.construction_keys_moved, 7);
        assert_eq!(m.per_peer_interactions, vec![3, 0, 2, 0]);
    }
}
