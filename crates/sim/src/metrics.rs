//! Metrics collected by the construction simulator.

/// Counters accumulated while constructing the overlay.
#[derive(Clone, Debug, Default)]
pub struct ConstructionMetrics {
    /// Interactions initiated (one per contacted peer, including refer hops).
    pub interactions: usize,
    /// Interactions that resulted in no state change.
    pub fruitless_interactions: usize,
    /// Number of refer hops performed.
    pub refer_hops: usize,
    /// Number of balanced or unbalanced splits performed (path extensions).
    pub splits: usize,
    /// Number of replicate/reconcile interactions.
    pub replications: usize,
    /// Data keys moved over the network during the replication phase.
    pub replication_keys_moved: usize,
    /// Data keys moved during construction (splits and reconciliation).
    pub construction_keys_moved: usize,
    /// Number of parallel rounds until quiescence (the latency proxy).
    pub rounds: usize,
    /// Per-peer count of interactions initiated.
    pub per_peer_interactions: Vec<usize>,
}

impl ConstructionMetrics {
    /// Creates counters for `n` peers.
    pub fn new(n: usize) -> Self {
        ConstructionMetrics {
            per_peer_interactions: vec![0; n],
            ..ConstructionMetrics::default()
        }
    }

    /// Total keys moved (replication plus construction).
    pub fn total_keys_moved(&self) -> usize {
        self.replication_keys_moved + self.construction_keys_moved
    }

    /// Mean interactions initiated per peer.
    pub fn interactions_per_peer(&self) -> f64 {
        if self.per_peer_interactions.is_empty() {
            return 0.0;
        }
        self.interactions as f64 / self.per_peer_interactions.len() as f64
    }

    /// Mean keys moved per peer.
    pub fn keys_moved_per_peer(&self) -> f64 {
        if self.per_peer_interactions.is_empty() {
            return 0.0;
        }
        self.total_keys_moved() as f64 / self.per_peer_interactions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_peer_averages() {
        let mut m = ConstructionMetrics::new(4);
        m.interactions = 8;
        m.replication_keys_moved = 20;
        m.construction_keys_moved = 12;
        assert_eq!(m.total_keys_moved(), 32);
        assert!((m.interactions_per_peer() - 2.0).abs() < 1e-12);
        assert!((m.keys_moved_per_peer() - 8.0).abs() < 1e-12);
        let empty = ConstructionMetrics::default();
        assert_eq!(empty.interactions_per_peer(), 0.0);
    }
}
