//! Parallel execution of conflict-free interaction batches.
//!
//! The executor receives a batch of [`crate::schedule::InteractionScript`]s
//! whose claim sets are pairwise disjoint.  It distributes exclusive
//! `&mut PeerState` handles to each script in one pass over the peer slice
//! (safe Rust — no peer is handed out twice because the scheduler
//! guarantees disjointness, and the ownership map enforces it), then runs
//! the scripts either inline or chunked across `std::thread::scope`
//! workers.  Each worker accumulates a [`crate::metrics::MetricsDelta`];
//! deltas are merged in worker order and per-script outcomes are applied in
//! batch order afterwards, so the result is bit-identical for every thread
//! count.
//!
//! A script's execution touches only its claimed peers: the refer chain's
//! mutual `learn_reference` calls (initiator + contacted peer), the local
//! exchange (the two interacting peers) and the complement forward (the
//! recipient recorded — and claimed — at plan time).  All random draws come
//! from the script's private execution stream.

use crate::metrics::MetricsDelta;
use crate::schedule::{Endpoint, InteractionScript};
use pgrid_core::exchange::{self, ExchangeEngine};
use pgrid_core::peer::PeerState;

/// Batches smaller than this run inline even when more threads are
/// configured: distributing a handful of interactions costs more in thread
/// hand-off than it saves.
const MIN_PARALLEL_BATCH: usize = 32;

/// What the post-batch bookkeeping needs to know about one interaction.
pub(crate) struct ScriptOutcome {
    /// The initiating peer (drives the fruitless/back-off counters).
    pub(crate) initiator: usize,
    /// Whether the interaction made useful progress.
    pub(crate) useful: bool,
    /// Peers to re-activate (the two parties of a useful local exchange).
    pub(crate) activate: Option<(usize, usize)>,
}

/// Exclusive handles to the peers claimed by one interaction.
#[derive(Default)]
struct ClaimSlots<'a> {
    slots: Vec<(usize, &'a mut PeerState)>,
}

impl ClaimSlots<'_> {
    fn position(&self, index: usize) -> usize {
        self.slots
            .iter()
            .position(|(p, _)| *p == index)
            .expect("peer accessed without a claim")
    }

    /// The claimed peer at `index`.
    fn get(&mut self, index: usize) -> &mut PeerState {
        let at = self.position(index);
        &mut *self.slots[at].1
    }

    /// Two distinct claimed peers at once.
    fn pair(&mut self, a: usize, b: usize) -> (&mut PeerState, &mut PeerState) {
        assert_ne!(a, b, "an interaction pairs two distinct peers");
        let (pa, pb) = (self.position(a), self.position(b));
        if pa < pb {
            let (left, right) = self.slots.split_at_mut(pb);
            (&mut *left[pa].1, &mut *right[0].1)
        } else {
            let (left, right) = self.slots.split_at_mut(pa);
            (&mut *right[0].1, &mut *left[pb].1)
        }
    }
}

/// Executes one batch of conflict-free interactions, returning the merged
/// metrics delta and the per-script outcomes in batch order.
pub(crate) fn execute_batch(
    batch: &mut [InteractionScript],
    peers: &mut [PeerState],
    engine: &ExchangeEngine,
    threads: usize,
) -> (MetricsDelta, Vec<ScriptOutcome>) {
    let n_peers = peers.len();
    if batch.is_empty() {
        return (MetricsDelta::default(), Vec::new());
    }

    // Hand out exclusive peer handles: one pass over the peer slice buckets
    // every claimed `&mut PeerState` into its owning script's slot list.
    let mut owner = vec![u32::MAX; n_peers];
    for (k, script) in batch.iter().enumerate() {
        for &claim in &script.claims {
            debug_assert_eq!(owner[claim], u32::MAX, "claim sets must be disjoint");
            owner[claim] = k as u32;
        }
    }
    let mut slots: Vec<ClaimSlots<'_>> = batch.iter().map(|_| ClaimSlots::default()).collect();
    for (index, peer) in peers.iter_mut().enumerate() {
        let k = owner[index];
        if k != u32::MAX {
            slots[k as usize].slots.push((index, peer));
        }
    }
    let mut work: Vec<(&mut InteractionScript, ClaimSlots<'_>)> =
        batch.iter_mut().zip(slots).collect();

    if threads <= 1 || work.len() < MIN_PARALLEL_BATCH {
        return run_chunk(&mut work, engine, n_peers);
    }

    let batch_len = work.len();
    let chunk_size = batch_len.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .chunks_mut(chunk_size)
            .map(|chunk| scope.spawn(move || run_chunk(chunk, engine, n_peers)))
            .collect();
        let mut delta = MetricsDelta::default();
        let mut outcomes = Vec::with_capacity(batch_len);
        for handle in handles {
            let (worker_delta, worker_outcomes) =
                handle.join().expect("batch worker must not panic");
            delta.merge(&worker_delta);
            outcomes.extend(worker_outcomes);
        }
        (delta, outcomes)
    })
}

/// Runs a contiguous chunk of scripts on the current thread.
fn run_chunk(
    chunk: &mut [(&mut InteractionScript, ClaimSlots<'_>)],
    engine: &ExchangeEngine,
    n_peers: usize,
) -> (MetricsDelta, Vec<ScriptOutcome>) {
    let mut delta = MetricsDelta::default();
    let mut outcomes = Vec::with_capacity(chunk.len());
    for (script, slots) in chunk {
        outcomes.push(execute_script(script, slots, engine, n_peers, &mut delta));
    }
    (delta, outcomes)
}

/// Executes one interaction script against its claimed peers.
fn execute_script(
    script: &mut InteractionScript,
    slots: &mut ClaimSlots<'_>,
    engine: &ExchangeEngine,
    n_peers: usize,
    delta: &mut MetricsDelta,
) -> ScriptOutcome {
    let initiator = script.initiator;
    let rng = &mut script.exec_rng;
    delta.interactions += script.contacts;
    delta.refer_hops += script.refer_targets.len();
    if script.contacts > 0 {
        delta.per_initiator.push((initiator, script.contacts));
    }

    // Replay the refer chain: both parties of every hop learn a routing
    // reference at the divergence level (the chain itself was fixed at plan
    // time, so only the state transition happens here).
    for &target in &script.refer_targets {
        let (peer_i, peer_t) = slots.pair(initiator, target);
        let (id_i, path_i) = (peer_i.id, peer_i.path);
        let (id_t, path_t) = (peer_t.id, peer_t.path);
        peer_i.learn_reference(id_t, path_t, rng);
        peer_t.learn_reference(id_i, path_i, rng);
    }

    match script.endpoint {
        Endpoint::Fruitless => {
            if script.contacts > 0 {
                delta.fruitless_interactions += 1;
            }
            ScriptOutcome {
                initiator,
                useful: false,
                activate: None,
            }
        }
        Endpoint::Local {
            partner,
            complement,
        } => {
            // Work on the shallower peer's partition: if one peer has
            // already extended its path beyond the other, the shallower one
            // is the one with a decision to make.
            let (lagging, ahead) = {
                let len_i = slots.get(initiator).path.len();
                let len_p = slots.get(partner).path.len();
                if len_i <= len_p {
                    (initiator, partner)
                } else {
                    (partner, initiator)
                }
            };
            let (peer_lagging, peer_ahead) = slots.pair(lagging, ahead);
            let partition = peer_lagging.path;
            let assessment = {
                let store_lagging = peer_lagging.store.restricted(&partition);
                let store_ahead = peer_ahead.store.restricted(&partition);
                engine.assess(&store_lagging, &store_ahead, &partition)
            };
            let decision = engine.decide(peer_lagging.path, peer_ahead.path, &assessment, rng);
            let outcome =
                exchange::apply_decision(&decision, peer_lagging, peer_ahead, complement, rng);
            delta.tally.record(&outcome);
            // Keys of a same-side catch-up belong to the complementary
            // subtree's reference peer (content exchange of Figure 2); the
            // recipient was claimed at plan time.
            if let Some((reference, entries)) = outcome.forwarded {
                let recipient = reference.peer.0 as usize;
                if recipient < n_peers {
                    slots.get(recipient).store.merge_batch(entries);
                }
            }
            if outcome.useful {
                ScriptOutcome {
                    initiator,
                    useful: true,
                    activate: Some((lagging, ahead)),
                }
            } else {
                delta.fruitless_interactions += 1;
                ScriptOutcome {
                    initiator,
                    useful: false,
                    activate: None,
                }
            }
        }
    }
}
