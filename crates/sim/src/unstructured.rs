//! The pre-existing unstructured overlay network.
//!
//! The paper assumes a generic unstructured overlay (a random graph) over
//! which peers can perform random walks to sample interaction partners
//! uniformly, flood voting requests to decide whether to start indexing
//! (Section 4.1), and pick random peers for the initial replication phase.

use pgrid_core::routing::PeerId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// A random-graph unstructured overlay over `n` peers.
#[derive(Clone, Debug)]
pub struct UnstructuredOverlay {
    adjacency: Vec<Vec<usize>>,
}

impl UnstructuredOverlay {
    /// Builds a connected random graph where every peer knows roughly
    /// `degree` neighbours: a ring (for guaranteed connectivity) plus random
    /// extra edges.
    pub fn random<R: Rng + ?Sized>(n: usize, degree: usize, rng: &mut R) -> UnstructuredOverlay {
        assert!(n >= 2, "need at least two peers");
        let mut adjacency = vec![Vec::new(); n];
        // Ring backbone guarantees connectivity.
        for i in 0..n {
            let next = (i + 1) % n;
            adjacency[i].push(next);
            adjacency[next].push(i);
        }
        // Random shortcuts up to the requested degree.
        let extra = degree.saturating_sub(2);
        for i in 0..n {
            for _ in 0..extra {
                let j = rng.gen_range(0..n);
                if j != i && !adjacency[i].contains(&j) {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        UnstructuredOverlay { adjacency }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the overlay is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Neighbours of a peer.
    pub fn neighbours(&self, peer: usize) -> &[usize] {
        &self.adjacency[peer]
    }

    /// Performs a random walk of the given length starting at `from` and
    /// returns the terminal peer.  A sufficiently long walk on the random
    /// graph approximates a uniform sample of the peer population, which is
    /// how peers realise the "select a peer uniformly at random" primitive
    /// of the partitioning algorithm without global knowledge.
    pub fn random_walk<R: Rng + ?Sized>(&self, from: usize, steps: usize, rng: &mut R) -> usize {
        let mut current = from;
        for _ in 0..steps {
            current = *self.adjacency[current]
                .choose(rng)
                .expect("graph has no isolated peers");
        }
        current
    }

    /// Samples a peer different from `from` via a random walk, retrying a
    /// few times if the walk happens to end at the starting peer.
    pub fn sample_other<R: Rng + ?Sized>(&self, from: usize, rng: &mut R) -> usize {
        for _ in 0..8 {
            let peer = self.random_walk(from, 6, rng);
            if peer != from {
                return peer;
            }
        }
        // Extremely unlikely fall-back: pick any other peer directly.
        let mut peer = rng.gen_range(0..self.len() - 1);
        if peer >= from {
            peer += 1;
        }
        peer
    }

    /// Floods a message from `origin` and returns, for every peer, the hop
    /// distance at which it was reached.  Used by the initiation vote of
    /// Section 4.1; the return value also gives the number of messages
    /// (every edge is crossed once in each direction at most).
    pub fn flood(&self, origin: usize) -> FloodResult {
        let mut distance = vec![usize::MAX; self.len()];
        let mut queue = VecDeque::new();
        distance[origin] = 0;
        queue.push_back(origin);
        let mut messages = 0usize;
        while let Some(peer) = queue.pop_front() {
            for &next in &self.adjacency[peer] {
                messages += 1;
                if distance[next] == usize::MAX {
                    distance[next] = distance[peer] + 1;
                    queue.push_back(next);
                }
            }
        }
        FloodResult { distance, messages }
    }

    /// The [`PeerId`] corresponding to a graph index (identity mapping; the
    /// helper exists to keep call sites readable).
    pub fn peer_id(index: usize) -> PeerId {
        PeerId(index as u64)
    }
}

/// Result of flooding the unstructured overlay.
#[derive(Clone, Debug)]
pub struct FloodResult {
    /// Hop distance from the origin for every peer (`usize::MAX` =
    /// unreachable, which cannot happen on the connected backbone).
    pub distance: Vec<usize>,
    /// Total messages sent by the flood.
    pub messages: usize,
}

impl FloodResult {
    /// Number of peers reached.
    pub fn reached(&self) -> usize {
        self.distance.iter().filter(|&&d| d != usize::MAX).count()
    }

    /// Maximum hop distance (the latency of the vote collection phase).
    pub fn depth(&self) -> usize {
        self.distance
            .iter()
            .filter(|&&d| d != usize::MAX)
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Outcome of the decentralized initiation vote (Section 4.1): peers report
/// whether they find a new index useful together with their local data
/// volume; the initiator aggregates the replies and, if a majority agrees,
/// floods back the construction parameters.
#[derive(Clone, Debug)]
pub struct VoteOutcome {
    /// Number of peers voting in favour.
    pub yes_votes: usize,
    /// Number of peers voting against.
    pub no_votes: usize,
    /// Aggregate number of data keys reported by the voters, from which the
    /// initiator derives `delta_max` (Section 4.2).
    pub total_reported_keys: usize,
    /// Messages spent on the vote (request flood plus aggregated replies).
    pub messages: usize,
    /// Hop depth of the flood (vote latency in rounds).
    pub rounds: usize,
}

impl VoteOutcome {
    /// Whether the vote passed (simple majority).
    pub fn passed(&self) -> bool {
        self.yes_votes > self.no_votes
    }

    /// Average number of keys per reporting peer.
    pub fn average_keys_per_peer(&self) -> f64 {
        let voters = self.yes_votes + self.no_votes;
        if voters == 0 {
            0.0
        } else {
            self.total_reported_keys as f64 / voters as f64
        }
    }
}

/// Runs the initiation vote: floods a request from `origin`, collects one
/// reply per peer (voting yes with probability `approval`), and aggregates
/// replies along the reverse flood paths.
pub fn run_initiation_vote<R: Rng + ?Sized>(
    overlay: &UnstructuredOverlay,
    origin: usize,
    approval: f64,
    keys_per_peer: &[usize],
    rng: &mut R,
) -> VoteOutcome {
    assert_eq!(keys_per_peer.len(), overlay.len());
    let flood = overlay.flood(origin);
    let mut yes = 0;
    let mut no = 0;
    let mut total_keys = 0;
    for &peer_keys in keys_per_peer.iter().take(overlay.len()) {
        if rng.gen_bool(approval.clamp(0.0, 1.0)) {
            yes += 1;
        } else {
            no += 1;
        }
        total_keys += peer_keys;
    }
    // Replies travel back along the flood tree: one message per peer, plus
    // the final decision flood.
    let messages = flood.messages + overlay.len() + flood.messages;
    VoteOutcome {
        yes_votes: yes,
        no_votes: no,
        total_reported_keys: total_keys,
        messages,
        rounds: flood.depth() * 2 + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let overlay = UnstructuredOverlay::random(100, 6, &mut rng);
        let flood = overlay.flood(0);
        assert_eq!(flood.reached(), 100);
        assert!(flood.depth() < 60);
    }

    #[test]
    fn degree_is_roughly_as_requested() {
        let mut rng = StdRng::seed_from_u64(2);
        let overlay = UnstructuredOverlay::random(200, 8, &mut rng);
        let avg: f64 = (0..200)
            .map(|i| overlay.neighbours(i).len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!((6.0..=16.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn random_walks_mix_over_the_population() {
        let mut rng = StdRng::seed_from_u64(3);
        let overlay = UnstructuredOverlay::random(50, 8, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(overlay.sample_other(0, &mut rng));
        }
        // A uniform-ish sampler should touch most of the population.
        assert!(seen.len() > 35, "only reached {} peers", seen.len());
        assert!(!seen.contains(&0));
    }

    #[test]
    fn initiation_vote_aggregates_keys_and_passes_with_high_approval() {
        let mut rng = StdRng::seed_from_u64(4);
        let overlay = UnstructuredOverlay::random(64, 6, &mut rng);
        let keys = vec![10usize; 64];
        let outcome = run_initiation_vote(&overlay, 0, 0.9, &keys, &mut rng);
        assert!(outcome.passed());
        assert_eq!(outcome.total_reported_keys, 640);
        assert!((outcome.average_keys_per_peer() - 10.0).abs() < 1e-9);
        assert!(outcome.messages > 64);
        assert!(outcome.rounds >= 3);
        let negative = run_initiation_vote(&overlay, 0, 0.05, &keys, &mut rng);
        assert!(!negative.passed());
    }

    #[test]
    #[should_panic]
    fn single_peer_overlay_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        UnstructuredOverlay::random(1, 4, &mut rng);
    }
}
