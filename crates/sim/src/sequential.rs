//! Sequential-join baseline constructor.
//!
//! The paper contrasts its parallel construction with the standard overlay
//! maintenance model in which peers join one at a time (Section 1 and the
//! complexity discussion of Section 4.3): each join routes through the
//! existing overlay to the partition the joining peer should serve and then
//! either splits that partition or replicates it.  The total message count
//! is comparable (`O(N log N)`), but because joins are serialised the
//! construction latency is `O(N log N)` instead of the parallel
//! `O(log^2 N)` rounds.

use pgrid_core::key::DataEntry;
use pgrid_core::path::Path;
use pgrid_core::peer::PeerState;
use pgrid_core::routing::{PeerId, RoutingEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;

/// Result of the sequential baseline construction.
#[derive(Clone, Debug)]
pub struct SequentialOutcome {
    /// Final peer states.
    pub peers: Vec<PeerState>,
    /// Total messages spent (routing hops plus join handshakes).
    pub messages: usize,
    /// Serialised latency: the sum over joins of the per-join latency in
    /// message round-trips (joins cannot overlap in the standard model).
    pub latency: usize,
    /// Keys moved between peers during joins.
    pub keys_moved: usize,
}

impl SequentialOutcome {
    /// Final path of every peer.
    pub fn peer_paths(&self) -> Vec<Path> {
        self.peers.iter().map(|p| p.path).collect()
    }
}

/// Builds the overlay by sequential joins: the first peer owns the whole key
/// space; every subsequent peer routes to the partition covering a random
/// one of its keys and splits it if overloaded (otherwise replicates).
pub fn construct_sequentially(config: &SimConfig) -> SequentialOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed ^ SEQ_MARKER);
    construct_sequentially_with_rng(config, &mut rng)
}

/// Decorrelates the sequential baseline from the parallel run that uses the
/// same configuration seed.
const SEQ_MARKER: u64 = 0x5E9_0000_0000;

fn construct_sequentially_with_rng<R: Rng + ?Sized>(
    config: &SimConfig,
    rng: &mut R,
) -> SequentialOutcome {
    let params = config.balance_params();
    let mut messages = 0usize;
    let mut latency = 0usize;
    let mut keys_moved = 0usize;

    // Pre-draw every peer's data.
    let all_data: Vec<Vec<DataEntry>> = (0..config.n_peers)
        .map(|i| {
            (0..config.keys_per_peer)
                .map(|j| {
                    DataEntry::new(
                        config.distribution.sample(rng),
                        pgrid_core::key::DataId((i * config.keys_per_peer + j) as u64),
                    )
                })
                .collect()
        })
        .collect();

    let mut peers: Vec<PeerState> = Vec::with_capacity(config.n_peers);
    let mut first = PeerState::new(PeerId(0), config.routing_fanout);
    for e in &all_data[0] {
        first.store.insert(*e);
    }
    peers.push(first);

    for (i, data) in all_data.iter().enumerate().skip(1) {
        let mut joiner = PeerState::new(PeerId(i as u64), config.routing_fanout);
        for e in data {
            joiner.store.insert(*e);
        }
        // Route from a random bootstrap peer to the partition covering one of
        // the joiner's keys (or a random key if it has none).
        let target_key = data
            .first()
            .map(|e| e.key)
            .unwrap_or_else(|| pgrid_core::key::Key::from_fraction(rng.gen::<f64>()));
        let mut current = rng.gen_range(0..peers.len());
        let mut hops = 0usize;
        while !peers[current].path.covers(target_key) && hops < 64 {
            // greedy prefix routing over the already-built overlay
            let path = peers[current].path;
            let level = (0..path.len())
                .find(|&l| path.bit(l) != target_key.bit(l))
                .unwrap_or(path.len());
            let next = peers[current]
                .routing
                .level(level)
                .iter()
                .map(|e| e.peer.0 as usize)
                .find(|&p| p < peers.len());
            match next {
                Some(p) => {
                    current = p;
                    hops += 1;
                }
                None => break,
            }
        }
        messages += hops + 2; // routing plus the join handshake
        latency += hops + 2; // joins are serialised: latency accumulates

        // Split or replicate the host's partition.  The storage criterion
        // drives the decision; the replication criterion is maintained
        // implicitly because `delta_max` is chosen as `keys_per_peer * n_min`
        // (one partition's worth of data corresponds to `n_min` peers' worth
        // of keys).
        let host_load = peers[current].responsible_load();
        if host_load > params.delta_max {
            // Split: joiner takes the half of the host partition where the
            // host holds fewer keys (a greedy local load-balance decision).
            let host_path = peers[current].path;
            let lower = host_path.child(false);
            let lower_count = peers[current].store.count_in(&lower);
            let upper_count = host_load - lower_count;
            let joiner_bit = lower_count > upper_count; // joiner takes lighter side
            let host_bit = !joiner_bit;

            let host_id = peers[current].id;
            let joiner_id = joiner.id;
            let host_new_path = host_path.child(host_bit);
            let joiner_new_path = host_path.child(joiner_bit);

            // The joiner inherits the host's routing references for the
            // levels above the split so it can route for the whole prefix.
            let inherited: Vec<(usize, RoutingEntry)> = peers[current]
                .routing
                .entries()
                .map(|(l, e)| (l, *e))
                .collect();
            for (level, entry) in inherited {
                joiner.routing.add(level, entry, rng);
            }

            let to_joiner = peers[current].split_towards(
                host_bit,
                RoutingEntry {
                    peer: joiner_id,
                    path: joiner_new_path,
                },
                rng,
            );
            keys_moved += to_joiner.len();
            let from_joiner = {
                joiner.path = host_path;
                joiner.split_towards(
                    joiner_bit,
                    RoutingEntry {
                        peer: host_id,
                        path: host_new_path,
                    },
                    rng,
                )
            };
            keys_moved += from_joiner.len();
            joiner.store.merge_from(to_joiner);
            peers[current].store.merge_from(from_joiner);
        } else {
            // Replicate the host partition.
            joiner.path = peers[current].path;
            // Copy the host's routing table (one entry per level).
            let host_entries: Vec<(usize, RoutingEntry)> = peers[current]
                .routing
                .entries()
                .map(|(l, e)| (l, *e))
                .collect();
            for (level, entry) in host_entries {
                joiner.routing.add(level, entry, rng);
            }
            // Full anti-entropy reconciliation between host and joiner, so
            // that the host's view of the partition load grows with the data
            // brought in by joining peers (this is what eventually triggers
            // splits in the sequential model).
            let outcome =
                pgrid_core::replication::reconcile(&mut peers[current].store, &mut joiner.store);
            keys_moved += outcome.total_transferred();
            let host_idx = current;
            let joiner_id = joiner.id;
            peers[host_idx].replicas.push(joiner_id);
            joiner.replicas.push(peers[host_idx].id);
        }
        peers.push(joiner);
    }

    // Final shuffle-free sanity: ensure ids line up with indices.
    for (i, p) in peers.iter().enumerate() {
        debug_assert_eq!(p.id.0 as usize, i);
    }

    SequentialOutcome {
        peers,
        messages,
        latency,
        keys_moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgrid_workload::distributions::Distribution;

    fn config() -> SimConfig {
        SimConfig {
            n_peers: 200,
            keys_per_peer: 10,
            n_min: 5,
            distribution: Distribution::Uniform,
            seed: 3,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sequential_construction_builds_a_trie() {
        let out = construct_sequentially(&config());
        assert_eq!(out.peers.len(), 200);
        let max_depth = out.peers.iter().map(|p| p.path.len()).max().unwrap();
        assert!(max_depth >= 2, "depth {max_depth}");
        assert!(out.messages > 200);
        assert!(out.keys_moved > 0);
    }

    #[test]
    fn latency_grows_linearly_with_population() {
        let small = construct_sequentially(&SimConfig {
            n_peers: 100,
            ..config()
        });
        let large = construct_sequentially(&SimConfig {
            n_peers: 400,
            ..config()
        });
        assert!(
            large.latency as f64 > 3.0 * small.latency as f64,
            "sequential latency must grow ~linearly: {} vs {}",
            small.latency,
            large.latency
        );
    }

    #[test]
    fn replication_keeps_minimum_peers_per_partition() {
        let out = construct_sequentially(&config());
        let trie = pgrid_core::trie::peer_count_trie(out.peers.iter().map(|p| &p.path));
        for (path, &count) in trie.iter() {
            // every partition that was actually split off must retain at
            // least one peer; most have close to n_min
            assert!(count >= 1, "partition {path} has no peers");
        }
    }
}
