//! Simulation configuration.

use pgrid_core::reference::BalanceParams;
use pgrid_workload::distributions::Distribution;

/// Which probability functions the construction uses for its split
/// decisions — the knob behind the "theory vs. heuristics" experiment
/// (Figure 6d) and the corrected-probability ablation.
///
/// This is the shared [`pgrid_core::exchange::ProbabilityStrategy`] under
/// its historical simulator name.
pub use pgrid_core::exchange::ProbabilityStrategy as ConstructionStrategy;

/// Configuration of a whole-system construction simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of peers in the network.
    pub n_peers: usize,
    /// Number of data keys initially assigned to every peer (the paper uses
    /// 10 in both the simulation study and the PlanetLab deployment).
    pub keys_per_peer: usize,
    /// Minimum replication factor `n_min`.
    pub n_min: usize,
    /// Maximum storage load `delta_max`; `None` derives the paper's
    /// experimental choice `keys_per_peer * n_min` (Figure 6 uses
    /// `delta_max = 10 * n_min` with 10 keys per peer).
    pub delta_max: Option<usize>,
    /// The key distribution of the workload.
    pub distribution: Distribution,
    /// Probability functions used for split decisions.
    pub strategy: ConstructionStrategy,
    /// Maximum number of routing references kept per level.
    pub routing_fanout: usize,
    /// Number of consecutive fruitless interactions after which a peer stops
    /// initiating and waits to be contacted (the paper suggests a small
    /// constant, e.g. 2).
    pub max_fruitless_attempts: u32,
    /// Maximum number of refer hops followed within one initiated
    /// interaction before giving up.
    pub max_refer_hops: usize,
    /// Hard bound on construction rounds (safety net; the process terminates
    /// by itself long before this for sane configurations).
    pub max_rounds: usize,
    /// Random seed.
    pub seed: u64,
    /// Worker threads executing each round's conflict-free interaction
    /// batches (`0` = one worker per available CPU).  The construction is
    /// bit-identical for every thread count — per-peer counter-derived RNG
    /// streams and the claim partition make scheduling order irrelevant —
    /// so this knob only trades wall-clock time.
    pub n_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_peers: 256,
            keys_per_peer: 10,
            n_min: 5,
            delta_max: None,
            distribution: Distribution::Uniform,
            strategy: ConstructionStrategy::Aep,
            routing_fanout: 5,
            max_fruitless_attempts: 2,
            max_refer_hops: 6,
            max_rounds: 400,
            seed: 0xC0FFEE,
            n_threads: 0,
        }
    }
}

impl SimConfig {
    /// The balance parameters (`delta_max`, `n_min`) in effect for this
    /// configuration, deriving `delta_max` from the paper's recommendation
    /// when not set explicitly.
    pub fn balance_params(&self) -> BalanceParams {
        match self.delta_max {
            Some(d) => BalanceParams::new(d, self.n_min),
            None => BalanceParams::recommended(self.keys_per_peer as f64, self.n_min),
        }
    }

    /// Total number of distinct data keys in the network before replication.
    pub fn total_keys(&self) -> usize {
        self.n_peers * self.keys_per_peer
    }

    /// The number of executor threads this configuration resolves to:
    /// `n_threads`, or the available CPU parallelism when it is `0`.
    pub fn effective_threads(&self) -> usize {
        match self.n_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_derives_paper_parameters() {
        let config = SimConfig::default();
        let params = config.balance_params();
        assert_eq!(params.n_min, 5);
        assert_eq!(params.delta_max, 50); // 10 keys/peer * n_min, as in Figure 6
        assert_eq!(config.total_keys(), 2560);
    }

    #[test]
    fn explicit_delta_max_wins() {
        let config = SimConfig {
            delta_max: Some(100),
            ..SimConfig::default()
        };
        assert_eq!(config.balance_params().delta_max, 100);
    }

    #[test]
    fn thread_count_resolution() {
        let auto = SimConfig::default();
        assert_eq!(auto.n_threads, 0);
        assert!(auto.effective_threads() >= 1);
        let pinned = SimConfig {
            n_threads: 3,
            ..SimConfig::default()
        };
        assert_eq!(pinned.effective_threads(), 3);
    }
}
