//! Decentralized construction of the overlay network (Sections 2.2 and 4).
//!
//! The simulator executes the paper's construction protocol in synchronous
//! rounds.  In every round each *active* peer initiates one interaction with
//! a peer sampled (approximately uniformly) through a random walk on the
//! pre-existing unstructured overlay:
//!
//! * if the two peers belong to the **same partition** (equal paths, or one
//!   path a prefix of the other) they locally decide to either *split* the
//!   partition — when it is overloaded according to the estimated data load
//!   and replica count — using the AEP decision probabilities, or to become
//!   *replicas* and reconcile their contents (the interactions of Figure 2);
//! * if they belong to **different partitions** the contacted peer *refers*
//!   the initiator to a peer from its routing table at the divergence level
//!   (and both learn a routing reference from the encounter);
//! * peers that experience a configurable number of consecutive fruitless
//!   interactions back off and only wake up when contacted again, which both
//!   synchronises fast peers with slow ones and eventually terminates the
//!   process (Section 4.2).
//!
//! The initial replication phase (each peer copies its keys to `n_min`
//! random peers) precedes the partitioning, exactly as in the deployment
//! timeline of Section 5.1.
//!
//! Since the exchange engine is stateless and every interaction touches
//! only the peers in its claim set, the rounds are executed as conflict-free
//! interaction batches spread across worker threads: [`crate::schedule`]
//! plans each round's interactions and partitions them into batches with
//! pairwise disjoint claim sets, [`crate::parallel`] executes a batch with
//! exclusive `&mut PeerState` access per interaction and merges the metric
//! deltas afterwards.  Randomness comes from per-peer counter-derived
//! streams, so the result is bit-identical for every
//! [`SimConfig::n_threads`] value, including `1`.

use crate::config::SimConfig;
use crate::metrics::ConstructionMetrics;
use crate::parallel::execute_batch;
use crate::schedule::{stream_rng, GenerationSet, Scheduler, STREAM_SHUFFLE};
use crate::unstructured::UnstructuredOverlay;
use pgrid_core::exchange::ExchangeEngine;
use pgrid_core::key::DataEntry;
use pgrid_core::path::Path;
use pgrid_core::peer::PeerState;
use pgrid_core::reference::BalanceParams;
use pgrid_core::routing::PeerId;
use pgrid_core::search::NetworkView;
use pgrid_core::store::KeyStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Lower bound on the balanced-split probability.
#[deprecated(note = "moved to pgrid_core::exchange::MIN_BALANCED_SPLIT_PROBABILITY")]
pub const MIN_BALANCED_SPLIT_PROBABILITY: f64 =
    pgrid_core::exchange::MIN_BALANCED_SPLIT_PROBABILITY;

/// How many times the normal fruitless budget a locally-overloaded peer may
/// keep initiating before it, too, backs off and waits to be contacted.
const OVERLOADED_PATIENCE: u32 = 8;

/// The constructed overlay network: all peer states plus the metrics of the
/// construction run.
#[derive(Clone, Debug)]
pub struct ConstructedOverlay {
    /// Final state of every peer.
    pub peers: Vec<PeerState>,
    /// Construction metrics.
    pub metrics: ConstructionMetrics,
    /// The balance parameters used.
    pub params: BalanceParams,
    /// The distinct data keys that were indexed (before replication).
    pub original_entries: Vec<DataEntry>,
}

impl ConstructedOverlay {
    /// The final path of every peer.
    pub fn peer_paths(&self) -> Vec<Path> {
        self.peers.iter().map(|p| p.path).collect()
    }

    /// Per-peer number of entries the peer is responsible for.
    pub fn responsible_loads(&self) -> Vec<usize> {
        self.peers.iter().map(|p| p.responsible_load()).collect()
    }

    /// Maximum trie depth reached.
    pub fn max_depth(&self) -> usize {
        self.peers.iter().map(|p| p.path.len()).max().unwrap_or(0)
    }

    /// Mean trie depth (≈ mean search path length).
    pub fn mean_depth(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.peers.iter().map(|p| p.path.len() as f64).sum::<f64>() / self.peers.len() as f64
    }

    /// Number of peers per distinct leaf partition (replication factors).
    pub fn replication_factors(&self) -> Vec<usize> {
        let trie = pgrid_core::trie::peer_count_trie(self.peers.iter().map(|p| &p.path));
        trie.iter().map(|(_, &n)| n).collect()
    }
}

/// A [`NetworkView`] over the constructed overlay, used to run queries.
impl NetworkView for ConstructedOverlay {
    fn path_of(&self, peer: PeerId) -> Option<Path> {
        self.peers.get(peer.0 as usize).map(|p| p.path)
    }

    fn routing_refs(&self, peer: PeerId, level: usize) -> Vec<(PeerId, Path)> {
        self.peers
            .get(peer.0 as usize)
            .map(|p| {
                p.routing
                    .level(level)
                    .iter()
                    .map(|e| (e.peer, e.path))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn is_online(&self, peer: PeerId) -> bool {
        self.peers
            .get(peer.0 as usize)
            .map(|p| p.online)
            .unwrap_or(false)
    }

    fn store_of(&self, peer: PeerId) -> Option<&KeyStore> {
        self.peers.get(peer.0 as usize).map(|p| &p.store)
    }
}

/// The construction process as an incrementally steppable state machine.
///
/// [`construct`] drives it straight through (replication, then rounds
/// until quiescence) and reproduces the historical monolithic constructor
/// bit for bit; scenario drivers can instead interleave rounds with churn,
/// data insertion or measurements between any two steps.
pub struct SimNetwork {
    config: SimConfig,
    engine: ExchangeEngine,
    /// Current state of every peer.
    pub peers: Vec<PeerState>,
    /// Construction metrics accumulated so far.
    pub metrics: ConstructionMetrics,
    /// The distinct data keys indexed so far (before replication).
    pub original_entries: Vec<DataEntry>,
    overlay_graph: UnstructuredOverlay,
    per_peer_originals: Vec<Vec<DataEntry>>,
    active: Vec<bool>,
    fruitless: Vec<u32>,
    scheduler: Scheduler,
    threads: usize,
    round: usize,
    /// Continuation of the setup RNG stream: replication samples its
    /// targets from it, exactly as the historical monolithic constructor
    /// did.
    rng: StdRng,
}

impl SimNetwork {
    /// Creates the peer population with its initial data assignment and
    /// unstructured bootstrap overlay (the exact RNG consumption of the
    /// historical constructor).
    pub fn new(config: &SimConfig) -> SimNetwork {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let params = config.balance_params();
        let engine = ExchangeEngine::with_strategy(params, config.strategy);

        // --- Initial data assignment -----------------------------------------
        let mut peers: Vec<PeerState> = (0..config.n_peers)
            .map(|i| PeerState::new(PeerId(i as u64), config.routing_fanout))
            .collect();
        let mut original_entries = Vec::with_capacity(config.total_keys());
        let mut per_peer_originals: Vec<Vec<DataEntry>> = Vec::with_capacity(config.n_peers);
        for (i, peer) in peers.iter_mut().enumerate() {
            let mut own = Vec::with_capacity(config.keys_per_peer);
            for j in 0..config.keys_per_peer {
                let key = config.distribution.sample(&mut rng);
                let entry = DataEntry::new(
                    key,
                    pgrid_core::key::DataId((i * config.keys_per_peer + j) as u64),
                );
                peer.store.insert(entry);
                original_entries.push(entry);
                own.push(entry);
            }
            per_peer_originals.push(own);
        }

        let overlay_graph = UnstructuredOverlay::random(config.n_peers, 8, &mut rng);
        let metrics = ConstructionMetrics::new(config.n_peers);
        SimNetwork {
            engine,
            peers,
            metrics,
            original_entries,
            overlay_graph,
            per_peer_originals,
            active: vec![true; config.n_peers],
            fruitless: vec![0u32; config.n_peers],
            scheduler: Scheduler::new(config.n_peers),
            threads: config.effective_threads(),
            round: 0,
            config: config.clone(),
            rng,
        }
    }

    /// The configuration the network was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The balance parameters in effect.
    pub fn params(&self) -> BalanceParams {
        *self.engine.params()
    }

    /// Construction rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether the construction has terminated: no peer is active any
    /// more.  An *offline* active peer still counts as pending work — it
    /// resumes initiating when it returns ([`SimNetwork::set_online`]) —
    /// so a churn window does not fake quiescence while the last active
    /// peers happen to be down.
    pub fn quiescent(&self) -> bool {
        !self.active.iter().any(|&a| a)
    }

    /// The replication phase: every peer copies its *own* keys to `n_min`
    /// random peers so that every key exists `n_min + 1` times in the
    /// network before partitioning starts (Section 4.2).  Only the original
    /// entries are forwarded; entries received from other peers are not
    /// re-replicated.  The transfers are batched: targets are deduplicated
    /// through a constant-time generation set and every target receives one
    /// bulk merge over all its sources (one buffer reservation per target)
    /// instead of `n_min` separate per-entry merges.
    pub fn replicate(&mut self) {
        let config = &self.config;
        let mut seen_targets = GenerationSet::new(config.n_peers);
        let mut inbound: Vec<Vec<DataEntry>> = vec![Vec::new(); config.n_peers];
        for (i, entries) in self.per_peer_originals.iter().enumerate() {
            seen_targets.clear();
            let mut picked = 0;
            while picked < config.n_min {
                let t = self.overlay_graph.sample_other(i, &mut self.rng);
                if seen_targets.insert(t) {
                    picked += 1;
                    let bucket = &mut inbound[t];
                    if bucket.is_empty() {
                        bucket.reserve(config.keys_per_peer * config.n_min);
                    }
                    bucket.extend_from_slice(entries);
                }
            }
        }
        for (t, batch) in inbound.into_iter().enumerate() {
            self.metrics.replication_keys_moved += self.peers[t].store.merge_batch(batch);
        }
    }

    /// One synchronous construction round: the shuffled active initiators
    /// are planned into conflict-free batches and executed across the
    /// configured worker threads; per-script outcomes drive the back-off
    /// bookkeeping in batch order, so every thread count reproduces the
    /// same overlay.  Returns `false` once no peer is active any more
    /// (quiescence).
    pub fn run_round(&mut self) -> bool {
        let config = &self.config;
        self.round += 1;
        let round = self.round;
        let mut pending: Vec<usize> = (0..config.n_peers)
            .filter(|&i| self.active[i] && self.peers[i].online)
            .collect();
        if pending.is_empty() {
            // Nothing to do right now: do not charge a round (the
            // historical constructor never executed empty rounds).  Active
            // peers that are merely offline keep the construction pending.
            self.round -= 1;
            return self.active.iter().any(|&a| a);
        }
        self.metrics.rounds = round;
        pending.shuffle(&mut stream_rng(
            config.seed,
            round as u64,
            0,
            STREAM_SHUFFLE,
        ));
        while !pending.is_empty() {
            let (mut batch, deferred) = self.scheduler.plan_batch(
                &pending,
                &self.peers,
                &self.overlay_graph,
                config,
                round,
            );
            let (delta, outcomes) =
                execute_batch(&mut batch, &mut self.peers, &self.engine, self.threads);
            self.metrics.absorb(&delta);
            for outcome in &outcomes {
                let i = outcome.initiator;
                if outcome.useful {
                    self.fruitless[i] = 0;
                    if let Some((a, b)) = outcome.activate {
                        self.active[a] = true;
                        self.active[b] = true;
                    }
                } else {
                    self.fruitless[i] += 1;
                    // A peer defers its back-off while it has local evidence
                    // that its partition still needs splitting: as long as
                    // its own store holds clearly more keys than the storage
                    // bound (and those keys are actually separable by a
                    // bisection) it keeps initiating interactions — but only
                    // up to `OVERLOADED_PATIENCE` times the normal budget.
                    // Under heavy skew the pairwise capture–recapture
                    // assessment can veto the split such a peer is pushing
                    // for indefinitely; without the cap one stubborn peer
                    // keeps the whole network spinning to `max_rounds`
                    // (Section 4.2's contract is that *every* peer
                    // eventually goes dormant and wakes when contacted).
                    let patience = if self.engine.locally_overloaded(&self.peers[i]) {
                        config
                            .max_fruitless_attempts
                            .saturating_mul(OVERLOADED_PATIENCE)
                    } else {
                        config.max_fruitless_attempts
                    };
                    if self.fruitless[i] >= patience {
                        self.active[i] = false;
                    }
                }
            }
            pending = deferred;
        }
        self.active.iter().any(|&a| a)
    }

    /// Takes a peer offline (it stops initiating; churn model) or brings
    /// it back online (re-activated so it re-engages with the
    /// construction).
    pub fn set_online(&mut self, peer: usize, online: bool) {
        self.peers[peer].online = online;
        if online {
            self.active[peer] = true;
            self.fruitless[peer] = 0;
        }
    }

    /// Re-activates every online peer (e.g. after new data arrived through
    /// [`SimNetwork::insert_entries`]).
    pub fn activate_all(&mut self) {
        for i in 0..self.peers.len() {
            if self.peers[i].online {
                self.active[i] = true;
                self.fruitless[i] = 0;
            }
        }
    }

    /// Assigns fresh `keys` to `peer`, extending the ground truth
    /// (continuing its `DataId` numbering) and the peer's local store, and
    /// re-activates the peer (the re-indexing / distribution-shift
    /// workload).
    pub fn insert_entries(&mut self, peer: usize, keys: Vec<pgrid_core::key::Key>) {
        for key in keys {
            let entry = DataEntry::new(
                key,
                pgrid_core::key::DataId(self.original_entries.len() as u64),
            );
            self.original_entries.push(entry);
            self.peers[peer].store.insert(entry);
        }
        self.active[peer] = true;
        self.fruitless[peer] = 0;
    }

    /// Finishes the run, yielding the constructed overlay.
    pub fn into_overlay(self) -> ConstructedOverlay {
        ConstructedOverlay {
            params: *self.engine.params(),
            peers: self.peers,
            metrics: self.metrics,
            original_entries: self.original_entries,
        }
    }
}

/// A [`NetworkView`] over the (possibly still under construction) network,
/// so queries can be evaluated between rounds.
impl NetworkView for SimNetwork {
    fn path_of(&self, peer: PeerId) -> Option<Path> {
        self.peers.get(peer.0 as usize).map(|p| p.path)
    }

    fn routing_refs(&self, peer: PeerId, level: usize) -> Vec<(PeerId, Path)> {
        self.peers
            .get(peer.0 as usize)
            .map(|p| {
                p.routing
                    .level(level)
                    .iter()
                    .map(|e| (e.peer, e.path))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn is_online(&self, peer: PeerId) -> bool {
        self.peers
            .get(peer.0 as usize)
            .map(|p| p.online)
            .unwrap_or(false)
    }

    fn store_of(&self, peer: PeerId) -> Option<&KeyStore> {
        self.peers.get(peer.0 as usize).map(|p| &p.store)
    }
}

/// Runs the complete construction process for the given configuration.
pub fn construct(config: &SimConfig) -> ConstructedOverlay {
    let mut network = SimNetwork::new(config);
    network.replicate();
    while network.round() < config.max_rounds {
        if !network.run_round() {
            break;
        }
    }
    network.into_overlay()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgrid_core::balance::compare_to_reference;
    use pgrid_core::reference::ReferencePartitioning;
    use pgrid_workload::distributions::Distribution;

    fn small_config() -> SimConfig {
        SimConfig {
            n_peers: 128,
            keys_per_peer: 10,
            n_min: 5,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn construction_terminates_and_splits_the_key_space() {
        let overlay = construct(&small_config());
        assert!(overlay.metrics.rounds < small_config().max_rounds);
        assert!(overlay.max_depth() >= 2, "depth {}", overlay.max_depth());
        assert!(overlay.metrics.splits > 0);
        assert!(overlay.metrics.interactions > 0);
    }

    #[test]
    fn no_key_is_dropped_and_almost_all_are_reachable() {
        let overlay = construct(&small_config());
        let mut reachable = 0usize;
        for entry in &overlay.original_entries {
            // No entry may be dropped from the network entirely.
            let held_somewhere = overlay.peers.iter().any(|p| p.store.contains(entry));
            assert!(
                held_somewhere,
                "entry {entry:?} vanished during construction"
            );
            // Almost every entry must be stored at a peer responsible for it
            // (the paper reports 95–100% query success; the residual misses
            // are keys still "in transit" at non-responsible replicas).
            if overlay
                .peers
                .iter()
                .any(|p| p.path.covers(entry.key) && p.store.contains(entry))
            {
                reachable += 1;
            }
        }
        let fraction = reachable as f64 / overlay.original_entries.len() as f64;
        assert!(fraction > 0.95, "only {fraction:.3} of entries reachable");
    }

    #[test]
    fn routing_tables_are_consistent_with_paths() {
        let overlay = construct(&small_config());
        for peer in &overlay.peers {
            assert!(
                peer.invariants_hold(),
                "peer {:?} has an inconsistent routing table",
                peer.id
            );
        }
    }

    #[test]
    fn every_extended_peer_has_references_for_each_level() {
        let overlay = construct(&small_config());
        for peer in &overlay.peers {
            for level in 0..peer.path.len() {
                assert!(
                    !peer.routing.level(level).is_empty(),
                    "peer {:?} (path {}) lacks a reference at level {level}",
                    peer.id,
                    peer.path
                );
            }
        }
    }

    #[test]
    fn storage_load_is_bounded_for_uniform_keys() {
        let overlay = construct(&SimConfig {
            n_peers: 256,
            ..small_config()
        });
        let loads = overlay.responsible_loads();
        let max = *loads.iter().max().unwrap();
        // The storage criterion (delta_max = 25) should roughly cap the
        // per-partition load; allow some slack for estimation noise.
        assert!(max <= 4 * overlay.params.delta_max, "max load {max}");
    }

    #[test]
    fn balance_deviation_is_reasonable_for_uniform_and_skewed_keys() {
        for dist in [Distribution::Uniform, Distribution::Pareto { shape: 1.0 }] {
            let config = SimConfig {
                distribution: dist,
                n_peers: 128,
                ..small_config()
            };
            let overlay = construct(&config);
            let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
            let reference = ReferencePartitioning::compute(&keys, config.n_peers, overlay.params);
            let report = compare_to_reference(&reference, &overlay.peer_paths());
            assert!(
                report.deviation < 1.5,
                "{dist}: deviation {} too large",
                report.deviation
            );
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = construct(&small_config());
        let b = construct(&small_config());
        assert_eq!(a.peer_paths(), b.peer_paths());
        assert_eq!(a.metrics.interactions, b.metrics.interactions);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let single = construct(&SimConfig {
            n_threads: 1,
            ..small_config()
        });
        for n_threads in [2, 4] {
            let multi = construct(&SimConfig {
                n_threads,
                ..small_config()
            });
            assert_eq!(
                single.peer_paths(),
                multi.peer_paths(),
                "{n_threads} threads"
            );
            assert_eq!(single.metrics, multi.metrics, "{n_threads} threads");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = construct(&small_config());
        let b = construct(&SimConfig {
            seed: 8,
            ..small_config()
        });
        assert_ne!(a.metrics.interactions, b.metrics.interactions);
    }

    #[test]
    fn replication_phase_moves_keys() {
        let overlay = construct(&small_config());
        assert!(overlay.metrics.replication_keys_moved >= small_config().n_peers * 10 * 4);
    }
}
