//! Decentralized construction of the overlay network (Sections 2.2 and 4).
//!
//! The simulator executes the paper's construction protocol in synchronous
//! rounds.  In every round each *active* peer initiates one interaction with
//! a peer sampled (approximately uniformly) through a random walk on the
//! pre-existing unstructured overlay:
//!
//! * if the two peers belong to the **same partition** (equal paths, or one
//!   path a prefix of the other) they locally decide to either *split* the
//!   partition — when it is overloaded according to the estimated data load
//!   and replica count — using the AEP decision probabilities, or to become
//!   *replicas* and reconcile their contents (the interactions of Figure 2);
//! * if they belong to **different partitions** the contacted peer *refers*
//!   the initiator to a peer from its routing table at the divergence level
//!   (and both learn a routing reference from the encounter);
//! * peers that experience a configurable number of consecutive fruitless
//!   interactions back off and only wake up when contacted again, which both
//!   synchronises fast peers with slow ones and eventually terminates the
//!   process (Section 4.2).
//!
//! The initial replication phase (each peer copies its keys to `n_min`
//! random peers) precedes the partitioning, exactly as in the deployment
//! timeline of Section 5.1.

use crate::config::SimConfig;
use crate::metrics::ConstructionMetrics;
use crate::unstructured::UnstructuredOverlay;
use pgrid_core::exchange::{self, ExchangeDecision, ExchangeEngine};
use pgrid_core::key::DataEntry;
use pgrid_core::path::Path;
use pgrid_core::peer::PeerState;
use pgrid_core::reference::BalanceParams;
use pgrid_core::routing::PeerId;
use pgrid_core::search::NetworkView;
use pgrid_core::store::KeyStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Lower bound on the balanced-split probability.
#[deprecated(note = "moved to pgrid_core::exchange::MIN_BALANCED_SPLIT_PROBABILITY")]
pub const MIN_BALANCED_SPLIT_PROBABILITY: f64 =
    pgrid_core::exchange::MIN_BALANCED_SPLIT_PROBABILITY;

/// The constructed overlay network: all peer states plus the metrics of the
/// construction run.
#[derive(Clone, Debug)]
pub struct ConstructedOverlay {
    /// Final state of every peer.
    pub peers: Vec<PeerState>,
    /// Construction metrics.
    pub metrics: ConstructionMetrics,
    /// The balance parameters used.
    pub params: BalanceParams,
    /// The distinct data keys that were indexed (before replication).
    pub original_entries: Vec<DataEntry>,
}

impl ConstructedOverlay {
    /// The final path of every peer.
    pub fn peer_paths(&self) -> Vec<Path> {
        self.peers.iter().map(|p| p.path).collect()
    }

    /// Per-peer number of entries the peer is responsible for.
    pub fn responsible_loads(&self) -> Vec<usize> {
        self.peers.iter().map(|p| p.responsible_load()).collect()
    }

    /// Maximum trie depth reached.
    pub fn max_depth(&self) -> usize {
        self.peers.iter().map(|p| p.path.len()).max().unwrap_or(0)
    }

    /// Mean trie depth (≈ mean search path length).
    pub fn mean_depth(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.peers.iter().map(|p| p.path.len() as f64).sum::<f64>() / self.peers.len() as f64
    }

    /// Number of peers per distinct leaf partition (replication factors).
    pub fn replication_factors(&self) -> Vec<usize> {
        let trie = pgrid_core::trie::peer_count_trie(self.peers.iter().map(|p| &p.path));
        trie.iter().map(|(_, &n)| n).collect()
    }
}

/// A [`NetworkView`] over the constructed overlay, used to run queries.
impl NetworkView for ConstructedOverlay {
    fn path_of(&self, peer: PeerId) -> Option<Path> {
        self.peers.get(peer.0 as usize).map(|p| p.path)
    }

    fn routing_refs(&self, peer: PeerId, level: usize) -> Vec<(PeerId, Path)> {
        self.peers
            .get(peer.0 as usize)
            .map(|p| {
                p.routing
                    .level(level)
                    .iter()
                    .map(|e| (e.peer, e.path))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn is_online(&self, peer: PeerId) -> bool {
        self.peers
            .get(peer.0 as usize)
            .map(|p| p.online)
            .unwrap_or(false)
    }

    fn store_of(&self, peer: PeerId) -> Option<&KeyStore> {
        self.peers.get(peer.0 as usize).map(|p| &p.store)
    }
}

/// Runs the complete construction process for the given configuration.
pub fn construct(config: &SimConfig) -> ConstructedOverlay {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let params = config.balance_params();
    let engine = ExchangeEngine::with_strategy(params, config.strategy);

    // --- Initial data assignment -----------------------------------------
    let mut peers: Vec<PeerState> = (0..config.n_peers)
        .map(|i| PeerState::new(PeerId(i as u64), config.routing_fanout))
        .collect();
    let mut original_entries = Vec::with_capacity(config.total_keys());
    let mut per_peer_originals: Vec<Vec<DataEntry>> = Vec::with_capacity(config.n_peers);
    for (i, peer) in peers.iter_mut().enumerate() {
        let mut own = Vec::with_capacity(config.keys_per_peer);
        for j in 0..config.keys_per_peer {
            let key = config.distribution.sample(&mut rng);
            let entry = DataEntry::new(
                key,
                pgrid_core::key::DataId((i * config.keys_per_peer + j) as u64),
            );
            peer.store.insert(entry);
            original_entries.push(entry);
            own.push(entry);
        }
        per_peer_originals.push(own);
    }

    let overlay_graph = UnstructuredOverlay::random(config.n_peers, 8, &mut rng);
    let mut metrics = ConstructionMetrics::new(config.n_peers);

    // --- Replication phase -------------------------------------------------
    // Every peer copies its *own* keys to `n_min` random peers so that every
    // key exists `n_min + 1` times in the network before partitioning starts
    // (Section 4.2).  Only the original entries are forwarded; entries
    // received from other peers are not re-replicated.
    for (i, entries) in per_peer_originals.iter().enumerate() {
        let mut targets = Vec::new();
        while targets.len() < config.n_min {
            let t = overlay_graph.sample_other(i, &mut rng);
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            let added = peers[t].store.merge_from(entries.iter().copied());
            metrics.replication_keys_moved += added;
        }
    }

    // --- Construction rounds -----------------------------------------------
    let mut active = vec![true; config.n_peers];
    let mut fruitless = vec![0u32; config.n_peers];
    let mut order: Vec<usize> = (0..config.n_peers).collect();

    for round in 1..=config.max_rounds {
        metrics.rounds = round;
        order.shuffle(&mut rng);
        let mut any_progress = false;
        for &i in &order {
            if !active[i] {
                continue;
            }
            let useful = initiate_interaction(
                i,
                &mut peers,
                &overlay_graph,
                config,
                &engine,
                &mut metrics,
                &mut active,
                &mut rng,
            );
            if useful {
                fruitless[i] = 0;
                any_progress = true;
            } else {
                fruitless[i] += 1;
                // A peer only backs off when it has no local evidence that
                // its partition still needs splitting: as long as its own
                // store holds clearly more keys than the storage bound (and
                // those keys are actually separable by a bisection) it keeps
                // initiating interactions.
                if fruitless[i] >= config.max_fruitless_attempts
                    && !engine.locally_overloaded(&peers[i])
                {
                    active[i] = false;
                }
            }
        }
        if !any_progress && active.iter().all(|a| !a) {
            break;
        }
        if active.iter().all(|a| !a) {
            break;
        }
    }

    ConstructedOverlay {
        peers,
        metrics,
        params,
        original_entries,
    }
}

/// One interaction initiated by peer `i`.  Returns whether anything useful
/// happened (split, replication with data transfer, or a routing reference
/// learned through a refer chain that ended in a useful local interaction).
#[allow(clippy::too_many_arguments)]
fn initiate_interaction<R: Rng + ?Sized>(
    i: usize,
    peers: &mut [PeerState],
    overlay: &UnstructuredOverlay,
    config: &SimConfig,
    engine: &ExchangeEngine,
    metrics: &mut ConstructionMetrics,
    active: &mut [bool],
    rng: &mut R,
) -> bool {
    let mut target = overlay.sample_other(i, rng);
    for hop in 0..config.max_refer_hops {
        metrics.interactions += 1;
        metrics.per_peer_interactions[i] += 1;
        if target == i {
            metrics.fruitless_interactions += 1;
            return false;
        }
        let same_partition = peers[i].shares_partition_with(&peers[target].path);
        if same_partition {
            return local_interaction(i, target, peers, engine, metrics, active, rng);
        }
        // Different partitions: both peers learn a routing reference at the
        // divergence level, then the contacted peer refers the initiator to
        // a peer from its routing table whose path is a better match.
        metrics.refer_hops += 1;
        let (path_i, path_t) = (peers[i].path, peers[target].path);
        let id_i = peers[i].id;
        let id_t = peers[target].id;
        peers[i].learn_reference(id_t, path_t, rng);
        peers[target].learn_reference(id_i, path_i, rng);
        let level = path_i.common_prefix_len(&path_t);
        // The contacted peer knows peers whose paths agree with the
        // initiator's at the divergence bit: its routing entries at `level`.
        let referred = peers[target]
            .routing
            .level(level)
            .iter()
            .map(|e| e.peer.0 as usize)
            .filter(|&p| p != i)
            .collect::<Vec<_>>();
        match referred.as_slice().choose(rng) {
            Some(&next) => {
                target = next;
                if hop + 1 == config.max_refer_hops {
                    metrics.fruitless_interactions += 1;
                    return false;
                }
            }
            None => {
                metrics.fruitless_interactions += 1;
                return false;
            }
        }
    }
    false
}

/// A local interaction between two peers of the same partition (or where one
/// path is a prefix of the other): assess, decide, and apply through the
/// shared [`pgrid_core::exchange`] engine.
fn local_interaction<R: Rng + ?Sized>(
    a: usize,
    b: usize,
    peers: &mut [PeerState],
    engine: &ExchangeEngine,
    metrics: &mut ConstructionMetrics,
    active: &mut [bool],
    rng: &mut R,
) -> bool {
    // Work on the *shallower* peer's partition: if one peer has already
    // extended its path beyond the other, the shallower one is the one with
    // a decision to make ("peers ahead of the crowd wait for slower ones").
    let (lagging, ahead) = if peers[a].path.len() <= peers[b].path.len() {
        (a, b)
    } else {
        (b, a)
    };
    let partition = peers[lagging].path;

    // Zero-copy range views: the assessment only reads the two stores, so
    // no per-interaction BTreeSet clone is needed.
    let assessment = {
        let store_lagging = peers[lagging].store.restricted(&partition);
        let store_ahead = peers[ahead].store.restricted(&partition);
        engine.assess(&store_lagging, &store_ahead, &partition)
    };
    let decision = engine.decide(peers[lagging].path, peers[ahead].path, &assessment, rng);

    // A same-side catch-up split needs a reference to the complementary
    // subtree, drawn from the ahead peer's routing table at this level
    // (guaranteed to exist because the ahead peer obtained one when it
    // extended its own path).
    let complement = match decision {
        ExchangeDecision::Split {
            partition,
            bit,
            balanced: false,
        } if bit == peers[ahead].path.bit(partition.len()) => peers[ahead]
            .routing
            .level(partition.len())
            .choose(rng)
            .copied(),
        _ => None,
    };

    let (peer_lagging, peer_ahead) = two_peers(peers, lagging, ahead);
    let outcome = exchange::apply_decision(&decision, peer_lagging, peer_ahead, complement, rng);

    metrics.splits += outcome.splits;
    metrics.replications += outcome.replications;
    metrics.construction_keys_moved += outcome.keys_moved;
    // Keys of a same-side catch-up belong to the complementary subtree's
    // reference peer (content exchange of Figure 2).
    if let Some((reference, entries)) = outcome.forwarded {
        let recipient = reference.peer.0 as usize;
        if recipient < peers.len() {
            peers[recipient].store.merge_from(entries);
        }
    }

    if outcome.useful {
        active[lagging] = true;
        active[ahead] = true;
        true
    } else {
        metrics.fruitless_interactions += 1;
        false
    }
}

/// Borrows two distinct peers mutably out of the slice.
fn two_peers(peers: &mut [PeerState], a: usize, b: usize) -> (&mut PeerState, &mut PeerState) {
    assert!(a != b);
    if a < b {
        let (left, right) = peers.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = peers.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgrid_core::balance::compare_to_reference;
    use pgrid_core::reference::ReferencePartitioning;
    use pgrid_workload::distributions::Distribution;

    fn small_config() -> SimConfig {
        SimConfig {
            n_peers: 128,
            keys_per_peer: 10,
            n_min: 5,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn construction_terminates_and_splits_the_key_space() {
        let overlay = construct(&small_config());
        assert!(overlay.metrics.rounds < small_config().max_rounds);
        assert!(overlay.max_depth() >= 2, "depth {}", overlay.max_depth());
        assert!(overlay.metrics.splits > 0);
        assert!(overlay.metrics.interactions > 0);
    }

    #[test]
    fn no_key_is_dropped_and_almost_all_are_reachable() {
        let overlay = construct(&small_config());
        let mut reachable = 0usize;
        for entry in &overlay.original_entries {
            // No entry may be dropped from the network entirely.
            let held_somewhere = overlay.peers.iter().any(|p| p.store.contains(entry));
            assert!(
                held_somewhere,
                "entry {entry:?} vanished during construction"
            );
            // Almost every entry must be stored at a peer responsible for it
            // (the paper reports 95–100% query success; the residual misses
            // are keys still "in transit" at non-responsible replicas).
            if overlay
                .peers
                .iter()
                .any(|p| p.path.covers(entry.key) && p.store.contains(entry))
            {
                reachable += 1;
            }
        }
        let fraction = reachable as f64 / overlay.original_entries.len() as f64;
        assert!(fraction > 0.95, "only {fraction:.3} of entries reachable");
    }

    #[test]
    fn routing_tables_are_consistent_with_paths() {
        let overlay = construct(&small_config());
        for peer in &overlay.peers {
            assert!(
                peer.invariants_hold(),
                "peer {:?} has an inconsistent routing table",
                peer.id
            );
        }
    }

    #[test]
    fn every_extended_peer_has_references_for_each_level() {
        let overlay = construct(&small_config());
        for peer in &overlay.peers {
            for level in 0..peer.path.len() {
                assert!(
                    !peer.routing.level(level).is_empty(),
                    "peer {:?} (path {}) lacks a reference at level {level}",
                    peer.id,
                    peer.path
                );
            }
        }
    }

    #[test]
    fn storage_load_is_bounded_for_uniform_keys() {
        let overlay = construct(&SimConfig {
            n_peers: 256,
            ..small_config()
        });
        let loads = overlay.responsible_loads();
        let max = *loads.iter().max().unwrap();
        // The storage criterion (delta_max = 25) should roughly cap the
        // per-partition load; allow some slack for estimation noise.
        assert!(max <= 4 * overlay.params.delta_max, "max load {max}");
    }

    #[test]
    fn balance_deviation_is_reasonable_for_uniform_and_skewed_keys() {
        for dist in [Distribution::Uniform, Distribution::Pareto { shape: 1.0 }] {
            let config = SimConfig {
                distribution: dist,
                n_peers: 128,
                ..small_config()
            };
            let overlay = construct(&config);
            let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
            let reference = ReferencePartitioning::compute(&keys, config.n_peers, overlay.params);
            let report = compare_to_reference(&reference, &overlay.peer_paths());
            assert!(
                report.deviation < 1.5,
                "{dist}: deviation {} too large",
                report.deviation
            );
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = construct(&small_config());
        let b = construct(&small_config());
        assert_eq!(a.peer_paths(), b.peer_paths());
        assert_eq!(a.metrics.interactions, b.metrics.interactions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = construct(&small_config());
        let b = construct(&SimConfig {
            seed: 8,
            ..small_config()
        });
        assert_ne!(a.metrics.interactions, b.metrics.interactions);
    }

    #[test]
    fn replication_phase_moves_keys() {
        let overlay = construct(&small_config());
        assert!(overlay.metrics.replication_keys_moved >= small_config().n_peers * 10 * 4);
    }
}
