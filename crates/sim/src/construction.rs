//! Decentralized construction of the overlay network (Sections 2.2 and 4).
//!
//! The simulator executes the paper's construction protocol in synchronous
//! rounds.  In every round each *active* peer initiates one interaction with
//! a peer sampled (approximately uniformly) through a random walk on the
//! pre-existing unstructured overlay:
//!
//! * if the two peers belong to the **same partition** (equal paths, or one
//!   path a prefix of the other) they locally decide to either *split* the
//!   partition — when it is overloaded according to the estimated data load
//!   and replica count — using the AEP decision probabilities, or to become
//!   *replicas* and reconcile their contents (the interactions of Figure 2);
//! * if they belong to **different partitions** the contacted peer *refers*
//!   the initiator to a peer from its routing table at the divergence level
//!   (and both learn a routing reference from the encounter);
//! * peers that experience a configurable number of consecutive fruitless
//!   interactions back off and only wake up when contacted again, which both
//!   synchronises fast peers with slow ones and eventually terminates the
//!   process (Section 4.2).
//!
//! The initial replication phase (each peer copies its keys to `n_min`
//! random peers) precedes the partitioning, exactly as in the deployment
//! timeline of Section 5.1.

use crate::config::{ConstructionStrategy, SimConfig};
use crate::metrics::ConstructionMetrics;
use crate::unstructured::UnstructuredOverlay;
use pgrid_core::key::DataEntry;
use pgrid_core::path::Path;
use pgrid_core::peer::PeerState;
use pgrid_core::reference::BalanceParams;
use pgrid_core::routing::{PeerId, RoutingEntry};
use pgrid_core::search::NetworkView;
use pgrid_core::store::KeyStore;
use pgrid_partition::probabilities::{
    corrected_effective, effective_probabilities, heuristic_effective,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Lower bound on the balanced-split probability used by the whole-system
/// construction (see the comment at its use site).
pub const MIN_BALANCED_SPLIT_PROBABILITY: f64 = 0.02;

/// The constructed overlay network: all peer states plus the metrics of the
/// construction run.
#[derive(Clone, Debug)]
pub struct ConstructedOverlay {
    /// Final state of every peer.
    pub peers: Vec<PeerState>,
    /// Construction metrics.
    pub metrics: ConstructionMetrics,
    /// The balance parameters used.
    pub params: BalanceParams,
    /// The distinct data keys that were indexed (before replication).
    pub original_entries: Vec<DataEntry>,
}

impl ConstructedOverlay {
    /// The final path of every peer.
    pub fn peer_paths(&self) -> Vec<Path> {
        self.peers.iter().map(|p| p.path).collect()
    }

    /// Per-peer number of entries the peer is responsible for.
    pub fn responsible_loads(&self) -> Vec<usize> {
        self.peers.iter().map(|p| p.responsible_load()).collect()
    }

    /// Maximum trie depth reached.
    pub fn max_depth(&self) -> usize {
        self.peers.iter().map(|p| p.path.len()).max().unwrap_or(0)
    }

    /// Mean trie depth (≈ mean search path length).
    pub fn mean_depth(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        self.peers.iter().map(|p| p.path.len() as f64).sum::<f64>() / self.peers.len() as f64
    }

    /// Number of peers per distinct leaf partition (replication factors).
    pub fn replication_factors(&self) -> Vec<usize> {
        let trie = pgrid_core::trie::peer_count_trie(self.peers.iter().map(|p| &p.path));
        trie.iter().map(|(_, &n)| n).collect()
    }
}

/// A [`NetworkView`] over the constructed overlay, used to run queries.
impl NetworkView for ConstructedOverlay {
    fn path_of(&self, peer: PeerId) -> Option<Path> {
        self.peers.get(peer.0 as usize).map(|p| p.path)
    }

    fn routing_refs(&self, peer: PeerId, level: usize) -> Vec<(PeerId, Path)> {
        self.peers
            .get(peer.0 as usize)
            .map(|p| {
                p.routing
                    .level(level)
                    .iter()
                    .map(|e| (e.peer, e.path))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn is_online(&self, peer: PeerId) -> bool {
        self.peers
            .get(peer.0 as usize)
            .map(|p| p.online)
            .unwrap_or(false)
    }

    fn store_of(&self, peer: PeerId) -> Option<&KeyStore> {
        self.peers.get(peer.0 as usize).map(|p| &p.store)
    }
}

/// Runs the complete construction process for the given configuration.
pub fn construct(config: &SimConfig) -> ConstructedOverlay {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let params = config.balance_params();

    // --- Initial data assignment -----------------------------------------
    let mut peers: Vec<PeerState> = (0..config.n_peers)
        .map(|i| PeerState::new(PeerId(i as u64), config.routing_fanout))
        .collect();
    let mut original_entries = Vec::with_capacity(config.total_keys());
    let mut per_peer_originals: Vec<Vec<DataEntry>> = Vec::with_capacity(config.n_peers);
    for (i, peer) in peers.iter_mut().enumerate() {
        let mut own = Vec::with_capacity(config.keys_per_peer);
        for j in 0..config.keys_per_peer {
            let key = config.distribution.sample(&mut rng);
            let entry = DataEntry::new(key, pgrid_core::key::DataId((i * config.keys_per_peer + j) as u64));
            peer.store.insert(entry);
            original_entries.push(entry);
            own.push(entry);
        }
        per_peer_originals.push(own);
    }

    let overlay_graph = UnstructuredOverlay::random(config.n_peers, 8, &mut rng);
    let mut metrics = ConstructionMetrics::new(config.n_peers);

    // --- Replication phase -------------------------------------------------
    // Every peer copies its *own* keys to `n_min` random peers so that every
    // key exists `n_min + 1` times in the network before partitioning starts
    // (Section 4.2).  Only the original entries are forwarded; entries
    // received from other peers are not re-replicated.
    for i in 0..config.n_peers {
        let entries = &per_peer_originals[i];
        let mut targets = Vec::new();
        while targets.len() < config.n_min {
            let t = overlay_graph.sample_other(i, &mut rng);
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            let added = peers[t].store.merge_from(entries.iter().copied());
            metrics.replication_keys_moved += added;
        }
    }

    // --- Construction rounds -----------------------------------------------
    let mut active = vec![true; config.n_peers];
    let mut fruitless = vec![0u32; config.n_peers];
    let mut order: Vec<usize> = (0..config.n_peers).collect();

    for round in 1..=config.max_rounds {
        metrics.rounds = round;
        order.shuffle(&mut rng);
        let mut any_progress = false;
        for &i in &order {
            if !active[i] {
                continue;
            }
            let useful = initiate_interaction(
                i,
                &mut peers,
                &overlay_graph,
                config,
                &params,
                &mut metrics,
                &mut active,
                &mut rng,
            );
            if useful {
                fruitless[i] = 0;
                any_progress = true;
            } else {
                fruitless[i] += 1;
                // A peer only backs off when it has no local evidence that
                // its partition still needs splitting: as long as its own
                // store holds clearly more keys than the storage bound (and
                // those keys are actually separable by a bisection) it keeps
                // initiating interactions.
                if fruitless[i] >= config.max_fruitless_attempts
                    && !locally_wants_split(&peers[i], &params)
                {
                    active[i] = false;
                }
            }
        }
        if !any_progress && active.iter().all(|a| !a) {
            break;
        }
        if active.iter().all(|a| !a) {
            break;
        }
    }

    ConstructedOverlay {
        peers,
        metrics,
        params,
        original_entries,
    }
}

/// One interaction initiated by peer `i`.  Returns whether anything useful
/// happened (split, replication with data transfer, or a routing reference
/// learned through a refer chain that ended in a useful local interaction).
#[allow(clippy::too_many_arguments)]
fn initiate_interaction<R: Rng + ?Sized>(
    i: usize,
    peers: &mut [PeerState],
    overlay: &UnstructuredOverlay,
    config: &SimConfig,
    params: &BalanceParams,
    metrics: &mut ConstructionMetrics,
    active: &mut [bool],
    rng: &mut R,
) -> bool {
    let mut target = overlay.sample_other(i, rng);
    for hop in 0..config.max_refer_hops {
        metrics.interactions += 1;
        metrics.per_peer_interactions[i] += 1;
        if target == i {
            metrics.fruitless_interactions += 1;
            return false;
        }
        let same_partition = peers[i].shares_partition_with(&peers[target].path);
        if same_partition {
            return local_interaction(i, target, peers, config, params, metrics, active, rng);
        }
        // Different partitions: both peers learn a routing reference at the
        // divergence level, then the contacted peer refers the initiator to
        // a peer from its routing table whose path is a better match.
        metrics.refer_hops += 1;
        let (path_i, path_t) = (peers[i].path, peers[target].path);
        let id_i = peers[i].id;
        let id_t = peers[target].id;
        peers[i].learn_reference(id_t, path_t, rng);
        peers[target].learn_reference(id_i, path_i, rng);
        let level = path_i.common_prefix_len(&path_t);
        // The contacted peer knows peers whose paths agree with the
        // initiator's at the divergence bit: its routing entries at `level`.
        let referred = peers[target]
            .routing
            .level(level)
            .iter()
            .map(|e| e.peer.0 as usize)
            .filter(|&p| p != i)
            .collect::<Vec<_>>();
        match referred.as_slice().choose(rng) {
            Some(&next) => {
                target = next;
                if hop + 1 == config.max_refer_hops {
                    metrics.fruitless_interactions += 1;
                    return false;
                }
            }
            None => {
                metrics.fruitless_interactions += 1;
                return false;
            }
        }
    }
    false
}

/// A local interaction between two peers of the same partition (or where one
/// path is a prefix of the other): split, decide, or replicate.
#[allow(clippy::too_many_arguments)]
fn local_interaction<R: Rng + ?Sized>(
    a: usize,
    b: usize,
    peers: &mut [PeerState],
    config: &SimConfig,
    params: &BalanceParams,
    metrics: &mut ConstructionMetrics,
    active: &mut [bool],
    rng: &mut R,
) -> bool {
    // Work on the *shallower* peer's partition: if one peer has already
    // extended its path beyond the other, the shallower one is the one with
    // a decision to make ("peers ahead of the crowd wait for slower ones").
    let (lagging, ahead) = if peers[a].path.len() <= peers[b].path.len() {
        (a, b)
    } else {
        (b, a)
    };
    let partition = peers[lagging].path;

    if peers[lagging].path == peers[ahead].path {
        same_level_interaction(lagging, ahead, partition, peers, config, params, metrics, active, rng)
    } else {
        catch_up_interaction(lagging, ahead, partition, peers, config, params, metrics, active, rng)
    }
}

/// Both peers are exactly at the same partition: either split it (AEP
/// balanced split) or become replicas.
#[allow(clippy::too_many_arguments)]
fn same_level_interaction<R: Rng + ?Sized>(
    a: usize,
    b: usize,
    partition: Path,
    peers: &mut [PeerState],
    config: &SimConfig,
    params: &BalanceParams,
    metrics: &mut ConstructionMetrics,
    active: &mut [bool],
    rng: &mut R,
) -> bool {
    let (overloaded, p_hat, _replicas) = assess_partition(a, b, &partition, peers, params);

    if overloaded && partition.len() < pgrid_core::path::MAX_PATH_LEN {
        let (alpha, _, _) = decision_probabilities(config, p_hat, sample_count(a, b, &partition, peers));
        // For extremely skewed partitions the theoretical balanced-split
        // probability becomes vanishingly small and the first split of a
        // partition would take an unbounded number of encounters.  The
        // whole-system construction floors it at a small constant; the
        // resulting slight over-provisioning of nearly empty partitions is
        // the "dispersion" effect the paper acknowledges for very skewed
        // distributions (Section 2.2).
        let alpha = alpha.max(MIN_BALANCED_SPLIT_PROBABILITY);
        if rng.gen_bool(alpha.clamp(0.0, 1.0)) {
            // Balanced split: one peer takes each side (uniformly at random,
            // as the analysis of Section 3 assumes).
            let a_takes_zero = rng.gen_bool(0.5);
            let (zero_peer, one_peer) = if a_takes_zero { (a, b) } else { (b, a) };
            perform_split(zero_peer, one_peer, partition, peers, metrics, rng);
            active[a] = true;
            active[b] = true;
            return true;
        }
        metrics.fruitless_interactions += 1;
        return false;
    }

    // Not overloaded: become replicas and reconcile contents.
    let (store_a, store_b) = two_stores(peers, a, b);
    let outcome = pgrid_core::replication::reconcile(store_a, store_b);
    metrics.construction_keys_moved += outcome.total_transferred();
    metrics.replications += 1;
    let id_a = peers[a].id;
    let id_b = peers[b].id;
    if !peers[a].replicas.contains(&id_b) {
        peers[a].replicas.push(id_b);
    }
    if !peers[b].replicas.contains(&id_a) {
        peers[b].replicas.push(id_a);
    }
    if outcome.total_transferred() > 0 {
        active[a] = true;
        active[b] = true;
        true
    } else {
        // Fully synchronised copies: nothing learned (the termination signal
        // of Section 4.2).
        metrics.fruitless_interactions += 1;
        false
    }
}

/// The lagging peer meets a peer that has already decided at the lagging
/// peer's level: apply the AEP decided-peer rules (cases 3/4 of the
/// algorithm in Section 3.1).
#[allow(clippy::too_many_arguments)]
fn catch_up_interaction<R: Rng + ?Sized>(
    lagging: usize,
    ahead: usize,
    partition: Path,
    peers: &mut [PeerState],
    config: &SimConfig,
    params: &BalanceParams,
    metrics: &mut ConstructionMetrics,
    active: &mut [bool],
    rng: &mut R,
) -> bool {
    let level = partition.len();
    let ahead_bit = peers[ahead].path.bit(level);

    // The partition was split by others, so it must have been overloaded;
    // still verify from local information to avoid splitting partitions that
    // were split by mistake and to keep the storage criterion in charge.
    let (overloaded, p_hat, _) = assess_partition(lagging, ahead, &partition, peers, params);
    if !overloaded {
        // Lagging peer sees no reason to split; reconcile what it can and
        // wait (it keeps only keys of its own partition, which is a prefix
        // of the ahead peer's, so pull nothing).
        metrics.fruitless_interactions += 1;
        return false;
    }

    let (_, q0, q1) = decision_probabilities(config, p_hat, sample_count(lagging, ahead, &partition, peers));
    let opposite_probability = if ahead_bit { q0 } else { q1 };
    let take_opposite = rng.gen_bool(opposite_probability.clamp(0.0, 1.0));
    let chosen_bit = if take_opposite { !ahead_bit } else { ahead_bit };

    // Reference for the complementary side: the ahead peer itself when we
    // take the opposite side, otherwise one of the ahead peer's routing
    // references at this level (guaranteed to exist because the ahead peer
    // obtained one when it extended its own path).
    let reference = if take_opposite {
        Some(RoutingEntry {
            peer: peers[ahead].id,
            path: peers[ahead].path,
        })
    } else {
        peers[ahead].routing.level(level).choose(rng).copied()
    };
    let reference = match reference {
        Some(r) => r,
        None => {
            metrics.fruitless_interactions += 1;
            return false;
        }
    };

    // Extend the path and ship the keys of the other side to the reference
    // peer (content exchange of Figure 2).
    let shipped = peers[lagging].split_towards(chosen_bit, reference, rng);
    metrics.splits += 1;
    metrics.construction_keys_moved += shipped.len();
    let recipient = reference.peer.0 as usize;
    if recipient < peers.len() {
        peers[recipient].store.merge_from(shipped);
    }
    // If we joined the ahead peer's side, also reconcile with it so replicas
    // converge quickly.
    if !take_opposite && peers[lagging].path == peers[ahead].path {
        let (store_l, store_a) = two_stores(peers, lagging, ahead);
        let outcome = pgrid_core::replication::reconcile(store_l, store_a);
        metrics.construction_keys_moved += outcome.total_transferred();
        let id_l = peers[lagging].id;
        let id_a = peers[ahead].id;
        if !peers[lagging].replicas.contains(&id_a) {
            peers[lagging].replicas.push(id_a);
        }
        if !peers[ahead].replicas.contains(&id_l) {
            peers[ahead].replicas.push(id_l);
        }
    }
    active[lagging] = true;
    active[ahead] = true;
    true
}

/// Performs a balanced split between two peers of the same partition.
fn perform_split<R: Rng + ?Sized>(
    zero_peer: usize,
    one_peer: usize,
    partition: Path,
    peers: &mut [PeerState],
    metrics: &mut ConstructionMetrics,
    rng: &mut R,
) {
    let zero_id = peers[zero_peer].id;
    let one_id = peers[one_peer].id;
    let zero_path = partition.child(false);
    let one_path = partition.child(true);

    let to_one = peers[zero_peer].split_towards(
        false,
        RoutingEntry {
            peer: one_id,
            path: one_path,
        },
        rng,
    );
    let to_zero = peers[one_peer].split_towards(
        true,
        RoutingEntry {
            peer: zero_id,
            path: zero_path,
        },
        rng,
    );
    metrics.construction_keys_moved += to_one.len() + to_zero.len();
    peers[one_peer].store.merge_from(to_one);
    peers[zero_peer].store.merge_from(to_zero);
    metrics.splits += 2;
}

/// Estimates whether the partition is overloaded and what fraction of its
/// keys lies in the lower half, from the two interacting peers' local
/// stores only (Section 4.2).
///
/// The number of distinct keys in the partition is estimated by
/// capture–recapture over the two stores: if the partition holds `D` keys
/// and the peers hold `|K1|` and `|K2|` of them, the expected overlap is
/// `|K1| |K2| / D`, so `D̂ = |K1| |K2| / |K1 ∩ K2|` (never below the
/// observed union).  The equivalent replica-count estimate is
/// `m̂ = n_min D̂ / delta_max` — the paper's worked example ("two identical
/// stores of size delta_max imply n_min replicas") — and the partition is
/// split while `D̂ > delta_max` and `m̂ >= 2 n_min`, mirroring lines 1–2 of
/// the global `Partition` algorithm.  Unlike a naive overlap-only replica
/// count, this estimate is robust against the store growth caused by
/// anti-entropy reconciliation and key shipments during construction.
fn assess_partition(
    a: usize,
    b: usize,
    partition: &Path,
    peers: &[PeerState],
    params: &BalanceParams,
) -> (bool, f64, f64) {
    // Only the keys inside the current partition carry information about it;
    // leftovers from earlier levels are ignored for the estimates.
    let store_a = peers[a].store.restricted(partition);
    let store_b = peers[b].store.restricted(partition);
    let count_a = store_a.len();
    let count_b = store_b.len();
    let overlap = store_a.intersection_size(&store_b);
    let union = count_a + count_b - overlap;

    // Capture–recapture estimate of the distinct keys in the partition.
    let estimated_keys = if count_a == 0 || count_b == 0 {
        union as f64
    } else if overlap == 0 {
        // No overlap carries no upper bound on D; treat as "much larger than
        // what we can see".
        (union as f64) * 4.0
    } else {
        ((count_a as f64 * count_b as f64) / overlap as f64).max(union as f64)
    };
    let replicas = params.n_min as f64 * estimated_keys / params.delta_max as f64;

    // Load ratio of the lower half, estimated from the union of both stores
    // restricted to the partition (the "sample" of Section 3.2 — its size is
    // bounded by delta_max via the storage balancing itself).
    let lower = partition.child(false);
    let in_lower = store_a.count_in(&lower) + store_b.count_in(&lower);
    let total = count_a + count_b;
    let p_hat = if total == 0 {
        0.5
    } else {
        (in_lower as f64 / total as f64).clamp(1e-3, 1.0 - 1e-3)
    };

    // A bisection is only useful if it can eventually separate data: a
    // partition whose observed entries all share a single key value (e.g.
    // the postings of one very popular index term) can never be balanced by
    // bisection at any depth, so it is left alone regardless of its size.
    let splittable = match (store_a.key_span_in(partition), store_b.key_span_in(partition)) {
        (Some((lo_a, hi_a)), Some((lo_b, hi_b))) => lo_a.min(lo_b) != hi_a.max(hi_b),
        (Some((lo, hi)), None) | (None, Some((lo, hi))) => lo != hi,
        (None, None) => false,
    };

    let overloaded = splittable
        && estimated_keys > params.delta_max as f64
        && replicas >= 2.0 * params.n_min as f64;
    (overloaded, p_hat, replicas)
}

/// Whether a peer's own store gives it reason to keep pushing for a split of
/// its partition: clearly more keys than the storage bound, spread over both
/// halves of the partition.
fn locally_wants_split(peer: &PeerState, params: &BalanceParams) -> bool {
    let load = peer.responsible_load();
    if load < 2 * params.delta_max {
        return false;
    }
    match peer.store.key_span_in(&peer.path) {
        Some((lo, hi)) => lo != hi,
        None => false,
    }
}

/// Number of local keys that went into the ratio estimate (used to pick the
/// correction grid for the corrected strategy).
fn sample_count(a: usize, b: usize, partition: &Path, peers: &[PeerState]) -> usize {
    (peers[a].store.count_in(partition) + peers[b].store.count_in(partition)).max(1)
}

/// Maps the configured strategy to effective decision probabilities.
fn decision_probabilities(config: &SimConfig, p_hat: f64, samples: usize) -> (f64, f64, f64) {
    match config.strategy {
        ConstructionStrategy::Aep => effective_probabilities(p_hat),
        ConstructionStrategy::Heuristic => heuristic_effective(p_hat),
        ConstructionStrategy::AepCorrected => {
            // Bucket the sample size so the correction grids are reused
            // across interactions instead of being recomputed for every
            // distinct store size.
            let bucket = [5usize, 10, 20, 40, 80]
                .into_iter()
                .min_by_key(|&b| b.abs_diff(samples))
                .unwrap_or(10);
            corrected_effective(p_hat, bucket)
        }
    }
}

/// Borrows two distinct peers' stores mutably.
fn two_stores(peers: &mut [PeerState], a: usize, b: usize) -> (&mut KeyStore, &mut KeyStore) {
    assert!(a != b);
    if a < b {
        let (left, right) = peers.split_at_mut(b);
        (&mut left[a].store, &mut right[0].store)
    } else {
        let (left, right) = peers.split_at_mut(a);
        (&mut right[0].store, &mut left[b].store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgrid_core::balance::compare_to_reference;
    use pgrid_core::reference::ReferencePartitioning;
    use pgrid_workload::distributions::Distribution;

    fn small_config() -> SimConfig {
        SimConfig {
            n_peers: 128,
            keys_per_peer: 10,
            n_min: 5,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn construction_terminates_and_splits_the_key_space() {
        let overlay = construct(&small_config());
        assert!(overlay.metrics.rounds < small_config().max_rounds);
        assert!(overlay.max_depth() >= 2, "depth {}", overlay.max_depth());
        assert!(overlay.metrics.splits > 0);
        assert!(overlay.metrics.interactions > 0);
    }

    #[test]
    fn no_key_is_dropped_and_almost_all_are_reachable() {
        let overlay = construct(&small_config());
        let mut reachable = 0usize;
        for entry in &overlay.original_entries {
            // No entry may be dropped from the network entirely.
            let held_somewhere = overlay.peers.iter().any(|p| p.store.contains(entry));
            assert!(held_somewhere, "entry {entry:?} vanished during construction");
            // Almost every entry must be stored at a peer responsible for it
            // (the paper reports 95–100% query success; the residual misses
            // are keys still "in transit" at non-responsible replicas).
            if overlay
                .peers
                .iter()
                .any(|p| p.path.covers(entry.key) && p.store.contains(entry))
            {
                reachable += 1;
            }
        }
        let fraction = reachable as f64 / overlay.original_entries.len() as f64;
        assert!(fraction > 0.95, "only {fraction:.3} of entries reachable");
    }

    #[test]
    fn routing_tables_are_consistent_with_paths() {
        let overlay = construct(&small_config());
        for peer in &overlay.peers {
            assert!(
                peer.invariants_hold(),
                "peer {:?} has an inconsistent routing table",
                peer.id
            );
        }
    }

    #[test]
    fn every_extended_peer_has_references_for_each_level() {
        let overlay = construct(&small_config());
        for peer in &overlay.peers {
            for level in 0..peer.path.len() {
                assert!(
                    !peer.routing.level(level).is_empty(),
                    "peer {:?} (path {}) lacks a reference at level {level}",
                    peer.id,
                    peer.path
                );
            }
        }
    }

    #[test]
    fn storage_load_is_bounded_for_uniform_keys() {
        let overlay = construct(&SimConfig {
            n_peers: 256,
            ..small_config()
        });
        let loads = overlay.responsible_loads();
        let max = *loads.iter().max().unwrap();
        // The storage criterion (delta_max = 25) should roughly cap the
        // per-partition load; allow some slack for estimation noise.
        assert!(max <= 4 * overlay.params.delta_max, "max load {max}");
    }

    #[test]
    fn balance_deviation_is_reasonable_for_uniform_and_skewed_keys() {
        for dist in [Distribution::Uniform, Distribution::Pareto { shape: 1.0 }] {
            let config = SimConfig {
                distribution: dist,
                n_peers: 128,
                ..small_config()
            };
            let overlay = construct(&config);
            let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
            let reference =
                ReferencePartitioning::compute(&keys, config.n_peers, overlay.params);
            let report = compare_to_reference(&reference, &overlay.peer_paths());
            assert!(
                report.deviation < 1.5,
                "{dist}: deviation {} too large",
                report.deviation
            );
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = construct(&small_config());
        let b = construct(&small_config());
        assert_eq!(a.peer_paths(), b.peer_paths());
        assert_eq!(a.metrics.interactions, b.metrics.interactions);
    }

    #[test]
    fn different_seeds_differ() {
        let a = construct(&small_config());
        let b = construct(&SimConfig {
            seed: 8,
            ..small_config()
        });
        assert_ne!(a.metrics.interactions, b.metrics.interactions);
    }

    #[test]
    fn replication_phase_moves_keys() {
        let overlay = construct(&small_config());
        assert!(overlay.metrics.replication_keys_moved >= small_config().n_peers * 10 * 4);
    }
}
