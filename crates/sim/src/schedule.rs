//! Conflict-free interaction scheduling for the parallel constructor.
//!
//! Each construction round is executed as a sequence of *batches*.  A batch
//! is built by a greedy matcher: initiators are considered in the round's
//! shuffled order and each one's prospective interaction is *planned*
//! read-only against the current network state — the random-walk partner
//! sample, the refer-hop chain through routing tables, and (for a local
//! endpoint) the complementary-subtree reference a same-side catch-up split
//! would forward keys to.  The plan yields the interaction's **claim set**:
//! the initiator, every peer contacted along the refer chain, and the
//! complement-forward recipient.  Claims are granted greedily — an
//! interaction whose claims are disjoint from everything already granted in
//! this batch joins it; a conflicting initiator is deferred to the next
//! batch of the same round, where it re-plans against the post-batch state.
//! Within a batch all claim sets are pairwise disjoint, so the batch's
//! interactions execute on worker threads with exclusive `&mut PeerState`
//! access (see [`crate::parallel`]) and **any** thread count — including
//! one — produces bit-identical results.
//!
//! Determinism across thread counts additionally requires that no random
//! draw depends on execution order.  Every interaction therefore consumes
//! two private counter-derived streams seeded from `(seed, round,
//! initiator)` — one for the planner (partner sampling, refer-hop choices,
//! complement selection) and one carried into the executor (routing-table
//! eviction, the split/replicate decision and its application) — instead of
//! the shared round RNG of the earlier sequential implementation.  The
//! executor never re-reads routing tables to follow the chain: the plan
//! records the hops and the pre-drawn complement, so planner and executor
//! cannot diverge even though the executor mutates state as it goes.

use crate::config::SimConfig;
use crate::unstructured::UnstructuredOverlay;
use pgrid_core::peer::PeerState;
use pgrid_core::routing::RoutingEntry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Stream tag for the per-round initiator shuffle.
pub(crate) const STREAM_SHUFFLE: u64 = 0;
/// Stream tag for an interaction's planning draws.
pub(crate) const STREAM_PLAN: u64 = 1;
/// Stream tag for an interaction's execution draws.
pub(crate) const STREAM_EXEC: u64 = 2;

/// SplitMix64 finaliser: disperses one absorbed word.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-derived RNG stream for `(seed, round, peer, stream)`.
///
/// Each interaction owns its streams outright, so the draws it consumes are
/// a pure function of the configuration seed, the round number and the
/// initiating peer — independent of scheduling order and thread count.
pub(crate) fn stream_rng(seed: u64, round: u64, peer: u64, stream: u64) -> StdRng {
    let mut h = seed;
    for word in [round, peer, stream] {
        h = mix64(h ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    StdRng::seed_from_u64(h)
}

/// A fixed-capacity index set with O(1) insert/contains/clear.
///
/// One `u32` generation stamp per possible index; clearing bumps the
/// generation instead of touching the array, so the single allocation made
/// at construction time is reused for the whole run.  Used both for the
/// scheduler's granted-claim marks (cleared once per batch) and for the
/// replication phase's duplicate-target checks (cleared once per source
/// peer), replacing the former O(n_min²) `Vec::contains` scans.
pub(crate) struct GenerationSet {
    stamp: Vec<u32>,
    generation: u32,
}

impl GenerationSet {
    /// A set over indices `0..capacity`, initially empty (the stamps start
    /// one generation behind).
    pub(crate) fn new(capacity: usize) -> GenerationSet {
        GenerationSet {
            stamp: vec![0; capacity],
            generation: 1,
        }
    }

    /// Empties the set (O(1); restamps lazily on wrap-around).
    pub(crate) fn clear(&mut self) {
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    /// Whether `index` is in the set.
    pub(crate) fn contains(&self, index: usize) -> bool {
        self.stamp[index] == self.generation
    }

    /// Inserts `index`; returns `true` if it was not present before.
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        if self.contains(index) {
            false
        } else {
            self.stamp[index] = self.generation;
            true
        }
    }
}

/// How a planned interaction chain ends.
#[derive(Copy, Clone, Debug)]
pub(crate) enum Endpoint {
    /// The chain ended without a local interaction: the walk sampled the
    /// initiator itself, a refer hop dead-ended, or the hop budget ran out.
    Fruitless,
    /// The chain reached a peer of the initiator's partition; the executor
    /// runs the bilateral exchange against `partner`, using the pre-drawn
    /// `complement` reference if the decision is a same-side catch-up split.
    Local {
        /// Index of the partner peer (the last peer contacted).
        partner: usize,
        /// Reference to the complementary subtree, drawn at plan time from
        /// the ahead peer's routing table at the partition's level.
        complement: Option<RoutingEntry>,
    },
}

/// A fully planned interaction: the recorded refer chain, the endpoint, the
/// claim set and the private execution RNG stream.
pub(crate) struct InteractionScript {
    /// The initiating peer.
    pub(crate) initiator: usize,
    /// Peers contacted (refer hops plus a local endpoint, if any); feeds the
    /// `interactions` and `per_peer_interactions` metrics.
    pub(crate) contacts: usize,
    /// Peers that referred the initiator onward; the executor applies the
    /// mutual `learn_reference` of each such encounter.
    pub(crate) refer_targets: Vec<usize>,
    /// How the chain ends.
    pub(crate) endpoint: Endpoint,
    /// Every peer this interaction may read or mutate (deduplicated).
    pub(crate) claims: Vec<usize>,
    /// The interaction's execution stream (eviction, decision, application).
    pub(crate) exec_rng: StdRng,
}

/// The greedy conflict-free batch matcher.
pub(crate) struct Scheduler {
    claimed: GenerationSet,
}

/// Result of planning one initiator against the current claim state.
enum Plan {
    /// The interaction can run in this batch.
    Granted(InteractionScript),
    /// A required peer is already claimed; retry in the next batch.
    Conflict,
}

impl Scheduler {
    /// A scheduler for `n_peers` peers.
    pub(crate) fn new(n_peers: usize) -> Scheduler {
        Scheduler {
            claimed: GenerationSet::new(n_peers),
        }
    }

    /// Plans one batch: walks `pending` in order, granting every initiator
    /// whose claim set is disjoint from the claims granted so far and
    /// deferring the rest.  Returns the batch plus the deferred initiators
    /// (in their original order).  The first pending initiator always plans
    /// against an empty claim table, so every call grants at least one
    /// interaction and the per-round batch loop terminates.
    pub(crate) fn plan_batch(
        &mut self,
        pending: &[usize],
        peers: &[PeerState],
        overlay: &UnstructuredOverlay,
        config: &SimConfig,
        round: usize,
    ) -> (Vec<InteractionScript>, Vec<usize>) {
        self.claimed.clear();
        let mut batch = Vec::with_capacity(pending.len());
        let mut deferred = Vec::new();
        for &initiator in pending {
            match self.plan_one(initiator, peers, overlay, config, round) {
                Plan::Granted(script) => {
                    for &claim in &script.claims {
                        self.claimed.insert(claim);
                    }
                    batch.push(script);
                }
                Plan::Conflict => deferred.push(initiator),
            }
        }
        (batch, deferred)
    }

    /// Plans the interaction of one initiator read-only against the current
    /// peer states, aborting with [`Plan::Conflict`] as soon as the chain
    /// touches an already-claimed peer.
    fn plan_one(
        &self,
        initiator: usize,
        peers: &[PeerState],
        overlay: &UnstructuredOverlay,
        config: &SimConfig,
        round: usize,
    ) -> Plan {
        if self.claimed.contains(initiator) {
            return Plan::Conflict;
        }
        let mut rng = stream_rng(config.seed, round as u64, initiator as u64, STREAM_PLAN);
        let exec_rng = stream_rng(config.seed, round as u64, initiator as u64, STREAM_EXEC);
        let mut claims = vec![initiator];
        let mut refer_targets = Vec::new();
        let mut contacts = 0usize;

        let finish = |contacts, refer_targets, claims, endpoint| {
            Plan::Granted(InteractionScript {
                initiator,
                contacts,
                refer_targets,
                endpoint,
                claims,
                exec_rng,
            })
        };

        let mut target = overlay.sample_other(initiator, &mut rng);
        for hop in 0..config.max_refer_hops {
            contacts += 1;
            if target == initiator {
                return finish(contacts, refer_targets, claims, Endpoint::Fruitless);
            }
            if !claims.contains(&target) {
                if self.claimed.contains(target) {
                    return Plan::Conflict;
                }
                claims.push(target);
            }
            if peers[initiator].shares_partition_with(&peers[target].path) {
                // Local endpoint.  The complement reference a same-side
                // catch-up would need is drawn now, from the ahead peer's
                // routing table at the partition's level, and claimed
                // conservatively: whether the decision actually uses it is
                // only known at execution time.
                let (lagging, ahead) = if peers[initiator].path.len() <= peers[target].path.len() {
                    (initiator, target)
                } else {
                    (target, initiator)
                };
                let partition = peers[lagging].path;
                let complement = peers[ahead]
                    .routing
                    .level(partition.len())
                    .choose(&mut rng)
                    .copied();
                if let Some(entry) = complement {
                    let recipient = entry.peer.0 as usize;
                    if recipient < peers.len() && !claims.contains(&recipient) {
                        if self.claimed.contains(recipient) {
                            return Plan::Conflict;
                        }
                        claims.push(recipient);
                    }
                }
                return finish(
                    contacts,
                    refer_targets,
                    claims,
                    Endpoint::Local {
                        partner: target,
                        complement,
                    },
                );
            }
            // Refer hop: the executor will apply the mutual learn_reference;
            // the planner only records the chain.  The candidate set is read
            // from the pre-interaction routing table, which the executor
            // never re-reads, so plan and execution cannot diverge.
            refer_targets.push(target);
            let level = peers[initiator].path.common_prefix_len(&peers[target].path);
            let referred: Vec<usize> = peers[target]
                .routing
                .level(level)
                .iter()
                .map(|e| e.peer.0 as usize)
                .filter(|&p| p != initiator)
                .collect();
            match referred.as_slice().choose(&mut rng) {
                Some(&next) if hop + 1 < config.max_refer_hops => target = next,
                _ => return finish(contacts, refer_targets, claims, Endpoint::Fruitless),
            }
        }
        finish(contacts, refer_targets, claims, Endpoint::Fruitless)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stream_rngs_are_deterministic_and_distinct() {
        let mut a = stream_rng(7, 3, 11, STREAM_PLAN);
        let mut b = stream_rng(7, 3, 11, STREAM_PLAN);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut exec = stream_rng(7, 3, 11, STREAM_EXEC);
        let mut other_peer = stream_rng(7, 3, 12, STREAM_PLAN);
        let mut other_round = stream_rng(7, 4, 11, STREAM_PLAN);
        let mut other_seed = stream_rng(8, 3, 11, STREAM_PLAN);
        let reference = stream_rng(7, 3, 11, STREAM_PLAN).gen::<u64>();
        assert_ne!(reference, exec.gen::<u64>());
        assert_ne!(reference, other_peer.gen::<u64>());
        assert_ne!(reference, other_round.gen::<u64>());
        assert_ne!(reference, other_seed.gen::<u64>());
    }

    #[test]
    fn generation_set_insert_contains_clear() {
        let mut set = GenerationSet::new(8);
        assert!(!set.contains(3), "a fresh set must be empty");
        assert!(set.insert(3));
        assert!(!set.insert(3));
        assert!(set.contains(3));
        assert!(!set.contains(4));
        set.clear();
        assert!(!set.contains(3));
        assert!(set.insert(3));
    }

    #[test]
    fn batches_claim_disjoint_peer_sets() {
        let config = SimConfig {
            n_peers: 64,
            seed: 5,
            ..SimConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let peers: Vec<PeerState> = (0..config.n_peers)
            .map(|i| PeerState::new(pgrid_core::routing::PeerId(i as u64), config.routing_fanout))
            .collect();
        let overlay = UnstructuredOverlay::random(config.n_peers, 8, &mut rng);
        let mut scheduler = Scheduler::new(config.n_peers);
        let pending: Vec<usize> = (0..config.n_peers).collect();
        let (batch, deferred) = scheduler.plan_batch(&pending, &peers, &overlay, &config, 1);
        assert!(!batch.is_empty());
        assert_eq!(batch.len() + deferred.len(), config.n_peers);
        let mut seen = std::collections::HashSet::new();
        for script in &batch {
            for &claim in &script.claims {
                assert!(seen.insert(claim), "claim {claim} granted twice");
            }
        }
    }
}
