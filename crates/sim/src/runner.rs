//! Experiment runner for the whole-system simulation study (Figure 6).
//!
//! Section 4.4 evaluates the construction over six key distributions,
//! several population sizes, replication factors and sample sizes, always
//! reporting the deviation of the resulting peer placement from the optimal
//! placement computed by the global `Partition` algorithm, plus the
//! per-peer interaction and bandwidth cost.  Every experiment is repeated
//! (the paper uses 10 repetitions) and averaged.

use crate::config::{ConstructionStrategy, SimConfig};
use crate::construction::construct;
use pgrid_core::balance::compare_to_reference;
use pgrid_core::reference::{BalanceParams, ReferencePartitioning};
use pgrid_workload::distributions::Distribution;

/// Aggregated result of repeated construction runs for one configuration.
#[derive(Clone, Debug)]
pub struct ConstructionResult {
    /// The key distribution label (`U`, `P0.5`, …).
    pub distribution: String,
    /// Number of peers.
    pub n_peers: usize,
    /// Replication factor `n_min`.
    pub n_min: usize,
    /// Storage bound `delta_max`.
    pub delta_max: usize,
    /// Mean load-balance deviation from the reference partitioning
    /// (Figure 6a–d).
    pub deviation: f64,
    /// Standard deviation of the balance deviation across repetitions.
    pub deviation_std: f64,
    /// Mean interactions initiated per peer (Figure 6e).
    pub interactions_per_peer: f64,
    /// Mean data keys moved per peer, replication phase included
    /// (Figure 6f).
    pub keys_moved_per_peer: f64,
    /// Mean construction rounds until quiescence (the latency proxy of the
    /// complexity discussion in Section 4.3).
    pub rounds: f64,
    /// Mean trie depth of the resulting overlay.
    pub mean_depth: f64,
}

/// A pluggable constructor: anything that turns a configuration into a
/// constructed overlay.  The sweeps default to the direct
/// [`construct`] driver; the scenario layer substitutes its executor here
/// so the very same aggregation runs over scenario-driven constructions.
pub type Constructor<'a> = &'a dyn Fn(&SimConfig) -> crate::construction::ConstructedOverlay;

/// Runs `repetitions` constructions of the given configuration (varying the
/// seed) and aggregates the figure metrics.
pub fn run_repeated(config: &SimConfig, repetitions: usize) -> ConstructionResult {
    run_repeated_with(config, repetitions, &construct)
}

/// [`run_repeated`] with a pluggable constructor.
pub fn run_repeated_with(
    config: &SimConfig,
    repetitions: usize,
    constructor: Constructor<'_>,
) -> ConstructionResult {
    assert!(repetitions > 0);
    let params = config.balance_params();
    let mut deviations = Vec::with_capacity(repetitions);
    let mut interactions = Vec::with_capacity(repetitions);
    let mut keys_moved = Vec::with_capacity(repetitions);
    let mut rounds = Vec::with_capacity(repetitions);
    let mut depths = Vec::with_capacity(repetitions);

    for rep in 0..repetitions {
        let run_config = SimConfig {
            seed: config.seed.wrapping_add(rep as u64 * 7919),
            ..config.clone()
        };
        let overlay = constructor(&run_config);
        let keys: Vec<_> = overlay.original_entries.iter().map(|e| e.key).collect();
        let reference = ReferencePartitioning::compute(&keys, run_config.n_peers, params);
        let report = compare_to_reference(&reference, &overlay.peer_paths());
        deviations.push(report.deviation);
        interactions.push(overlay.metrics.interactions_per_peer());
        keys_moved.push(overlay.metrics.keys_moved_per_peer());
        rounds.push(overlay.metrics.rounds as f64);
        depths.push(overlay.mean_depth());
    }

    ConstructionResult {
        distribution: config.distribution.label(),
        n_peers: config.n_peers,
        n_min: config.n_min,
        delta_max: params.delta_max,
        deviation: mean(&deviations),
        deviation_std: std_dev(&deviations),
        interactions_per_peer: mean(&interactions),
        keys_moved_per_peer: mean(&keys_moved),
        rounds: mean(&rounds),
        mean_depth: mean(&depths),
    }
}

/// Figure 6a/6e/6f: all six distributions for each population size.
pub fn population_sweep(
    populations: &[usize],
    n_min: usize,
    repetitions: usize,
    strategy: ConstructionStrategy,
    seed: u64,
) -> Vec<ConstructionResult> {
    population_sweep_with(populations, n_min, repetitions, strategy, seed, &construct)
}

/// [`population_sweep`] with a pluggable constructor.
pub fn population_sweep_with(
    populations: &[usize],
    n_min: usize,
    repetitions: usize,
    strategy: ConstructionStrategy,
    seed: u64,
    constructor: Constructor<'_>,
) -> Vec<ConstructionResult> {
    let mut rows = Vec::new();
    for &n in populations {
        for dist in Distribution::paper_suite() {
            let config = SimConfig {
                n_peers: n,
                n_min,
                distribution: dist,
                strategy,
                seed,
                ..SimConfig::default()
            };
            rows.push(run_repeated_with(&config, repetitions, constructor));
        }
    }
    rows
}

/// Figure 6b: varying the required replication factor `n_min`.
pub fn replication_sweep(
    n_peers: usize,
    n_mins: &[usize],
    repetitions: usize,
    seed: u64,
) -> Vec<ConstructionResult> {
    replication_sweep_with(n_peers, n_mins, repetitions, seed, &construct)
}

/// [`replication_sweep`] with a pluggable constructor.
pub fn replication_sweep_with(
    n_peers: usize,
    n_mins: &[usize],
    repetitions: usize,
    seed: u64,
    constructor: Constructor<'_>,
) -> Vec<ConstructionResult> {
    let mut rows = Vec::new();
    for &n_min in n_mins {
        for dist in Distribution::paper_suite() {
            let config = SimConfig {
                n_peers,
                n_min,
                distribution: dist,
                seed,
                ..SimConfig::default()
            };
            rows.push(run_repeated_with(&config, repetitions, constructor));
        }
    }
    rows
}

/// Figure 6c: varying the storage bound (which governs the sample the load
/// estimate is computed from) as multiples of `n_min`.
pub fn sample_size_sweep(
    n_peers: usize,
    n_min: usize,
    delta_multipliers: &[usize],
    repetitions: usize,
    seed: u64,
) -> Vec<ConstructionResult> {
    sample_size_sweep_with(
        n_peers,
        n_min,
        delta_multipliers,
        repetitions,
        seed,
        &construct,
    )
}

/// [`sample_size_sweep`] with a pluggable constructor.
pub fn sample_size_sweep_with(
    n_peers: usize,
    n_min: usize,
    delta_multipliers: &[usize],
    repetitions: usize,
    seed: u64,
    constructor: Constructor<'_>,
) -> Vec<ConstructionResult> {
    let mut rows = Vec::new();
    for &m in delta_multipliers {
        for dist in Distribution::paper_suite() {
            let config = SimConfig {
                n_peers,
                n_min,
                delta_max: Some(m * n_min),
                distribution: dist,
                seed,
                ..SimConfig::default()
            };
            rows.push(run_repeated_with(&config, repetitions, constructor));
        }
    }
    rows
}

/// Figure 6d: theoretically derived probabilities versus the heuristic ones.
pub fn theory_vs_heuristics(
    n_peers: usize,
    n_mins: &[usize],
    repetitions: usize,
    seed: u64,
) -> Vec<(ConstructionResult, ConstructionResult)> {
    theory_vs_heuristics_with(n_peers, n_mins, repetitions, seed, &construct)
}

/// [`theory_vs_heuristics`] with a pluggable constructor.
pub fn theory_vs_heuristics_with(
    n_peers: usize,
    n_mins: &[usize],
    repetitions: usize,
    seed: u64,
    constructor: Constructor<'_>,
) -> Vec<(ConstructionResult, ConstructionResult)> {
    let mut rows = Vec::new();
    for &n_min in n_mins {
        for dist in Distribution::paper_suite() {
            let theory = SimConfig {
                n_peers,
                n_min,
                distribution: dist,
                strategy: ConstructionStrategy::Aep,
                seed,
                ..SimConfig::default()
            };
            let heuristic = SimConfig {
                strategy: ConstructionStrategy::Heuristic,
                ..theory.clone()
            };
            rows.push((
                run_repeated_with(&theory, repetitions, constructor),
                run_repeated_with(&heuristic, repetitions, constructor),
            ));
        }
    }
    rows
}

/// The balance parameters that `run_repeated` would use for a configuration
/// (exposed for reporting).
pub fn effective_params(config: &SimConfig) -> BalanceParams {
    config.balance_params()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_repeated_aggregates_sane_metrics() {
        let config = SimConfig {
            n_peers: 96,
            seed: 5,
            ..SimConfig::default()
        };
        let result = run_repeated(&config, 3);
        assert_eq!(result.n_peers, 96);
        assert!(result.deviation >= 0.0 && result.deviation < 2.0);
        assert!(result.interactions_per_peer > 0.0);
        assert!(result.keys_moved_per_peer > 0.0);
        assert!(result.rounds >= 1.0);
        assert!(result.mean_depth > 0.5);
    }

    #[test]
    fn population_sweep_produces_a_row_per_cell() {
        let rows = population_sweep(&[64, 96], 5, 1, ConstructionStrategy::Aep, 1);
        assert_eq!(rows.len(), 12); // 2 populations x 6 distributions
        assert!(rows.iter().any(|r| r.distribution == "U"));
        assert!(rows.iter().any(|r| r.distribution == "A"));
    }

    #[test]
    fn theory_and_heuristic_strategies_both_complete() {
        // Both sides of the Figure 6d comparison must produce a valid
        // overlay; the quantitative comparison itself is produced by the
        // figures binary with the full repetition count (a couple of
        // repetitions at this size are dominated by run-to-run noise).
        let pairs = theory_vs_heuristics(96, &[5], 1, 21);
        assert_eq!(pairs.len(), 6);
        for (theory, heuristic) in pairs {
            assert!(theory.deviation >= 0.0 && theory.deviation.is_finite());
            assert!(heuristic.deviation >= 0.0 && heuristic.deviation.is_finite());
            assert!(theory.interactions_per_peer > 0.0);
            assert!(heuristic.interactions_per_peer > 0.0);
        }
    }
}
