//! Logical journal records and their wire codec.
//!
//! Each record is one self-delimiting payload of a log segment (the
//! checksum lives in the segment framing, not here).  Replay is
//! last-writer-wins per component, which is what makes compaction and
//! torn-tail truncation safe: a full image can always be re-applied, a
//! delta applies on top of whatever image replay has built so far.

use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::{Path, MAX_PATH_LEN};

/// Worker-level metadata: which shard this log belongs to and how far
/// the run had progressed at the last sync.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaImage {
    /// First hosted peer index.
    pub shard_start: u32,
    /// Number of hosted peers.
    pub shard_len: u32,
    /// Control-plane membership epoch at the last sync.
    pub epoch: u64,
    /// Last phase barrier this worker passed.
    pub phase: u8,
    /// Virtual time at the last sync, in milliseconds.
    pub now_ms: u64,
    /// Seed of the deployment config (guards against replaying a log
    /// into a different run).
    pub seed: u64,
}

/// A full per-peer image: path, entries, routing references, replicas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerImage {
    /// The peer's trie path.
    pub path: Path,
    /// Every stored entry.
    pub entries: Vec<DataEntry>,
    /// Routing references as `(level, peer, path)`.
    pub routing: Vec<(u8, u64, Path)>,
    /// Replica peers of this peer's partition.
    pub replicas: Vec<u64>,
}

/// The parts of a peer's state that changed since its last journaled
/// image; `None` components are unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerDelta {
    /// New path, if it changed.
    pub path: Option<Path>,
    /// Entries added to the store.
    pub added: Vec<DataEntry>,
    /// Entries removed from the store (split handovers, drains).
    pub removed: Vec<DataEntry>,
    /// Full routing image, if any reference changed.
    pub routing: Option<Vec<(u8, u64, Path)>>,
    /// Full replica set, if it changed.
    pub replicas: Option<Vec<u64>>,
}

impl PeerDelta {
    /// Whether the delta carries no change at all.
    pub fn is_empty(&self) -> bool {
        self.path.is_none()
            && self.added.is_empty()
            && self.removed.is_empty()
            && self.routing.is_none()
            && self.replicas.is_none()
    }
}

/// One journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Worker metadata (shard identity, run progress).
    Meta(MetaImage),
    /// A full image of one peer on one index — written the first time a
    /// peer is observed and by every compaction checkpoint.
    Image {
        /// Index id.
        index: u32,
        /// Peer index.
        peer: u32,
        /// The image.
        image: PeerImage,
    },
    /// A delta against the peer's last journaled state.  One `observe`
    /// emits at most one delta, so every record boundary is a consistent
    /// cut of that peer's state.
    Delta {
        /// Index id.
        index: u32,
        /// Peer index.
        peer: u32,
        /// The changes.
        delta: PeerDelta,
    },
}

const TAG_META: u8 = 1;
const TAG_IMAGE: u8 = 2;
const TAG_DELTA: u8 = 3;

const DELTA_PATH: u8 = 1;
const DELTA_ROUTING: u8 = 2;
const DELTA_REPLICAS: u8 = 4;

impl Record {
    /// Encodes the record as one segment payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            Record::Meta(meta) => {
                buf.push(TAG_META);
                put_u32(&mut buf, meta.shard_start);
                put_u32(&mut buf, meta.shard_len);
                put_u64(&mut buf, meta.epoch);
                buf.push(meta.phase);
                put_u64(&mut buf, meta.now_ms);
                put_u64(&mut buf, meta.seed);
            }
            Record::Image { index, peer, image } => {
                buf.push(TAG_IMAGE);
                put_u32(&mut buf, *index);
                put_u32(&mut buf, *peer);
                put_path(&mut buf, &image.path);
                put_entries(&mut buf, &image.entries);
                put_routing(&mut buf, &image.routing);
                put_peers(&mut buf, &image.replicas);
            }
            Record::Delta { index, peer, delta } => {
                buf.push(TAG_DELTA);
                put_u32(&mut buf, *index);
                put_u32(&mut buf, *peer);
                let mut flags = 0u8;
                if delta.path.is_some() {
                    flags |= DELTA_PATH;
                }
                if delta.routing.is_some() {
                    flags |= DELTA_ROUTING;
                }
                if delta.replicas.is_some() {
                    flags |= DELTA_REPLICAS;
                }
                buf.push(flags);
                if let Some(path) = &delta.path {
                    put_path(&mut buf, path);
                }
                put_entries(&mut buf, &delta.added);
                put_entries(&mut buf, &delta.removed);
                if let Some(routing) = &delta.routing {
                    put_routing(&mut buf, routing);
                }
                if let Some(replicas) = &delta.replicas {
                    put_peers(&mut buf, replicas);
                }
            }
        }
        buf
    }

    /// Decodes one segment payload.  The payload passed its checksum, so
    /// a decode failure means a format mismatch, not crash damage.
    pub fn decode(buf: &[u8]) -> Result<Record, String> {
        let mut at = 0usize;
        let record = match get_u8(buf, &mut at)? {
            TAG_META => Record::Meta(MetaImage {
                shard_start: get_u32(buf, &mut at)?,
                shard_len: get_u32(buf, &mut at)?,
                epoch: get_u64(buf, &mut at)?,
                phase: get_u8(buf, &mut at)?,
                now_ms: get_u64(buf, &mut at)?,
                seed: get_u64(buf, &mut at)?,
            }),
            TAG_IMAGE => Record::Image {
                index: get_u32(buf, &mut at)?,
                peer: get_u32(buf, &mut at)?,
                image: PeerImage {
                    path: get_path(buf, &mut at)?,
                    entries: get_entries(buf, &mut at)?,
                    routing: get_routing(buf, &mut at)?,
                    replicas: get_peers(buf, &mut at)?,
                },
            },
            TAG_DELTA => {
                let index = get_u32(buf, &mut at)?;
                let peer = get_u32(buf, &mut at)?;
                let flags = get_u8(buf, &mut at)?;
                Record::Delta {
                    index,
                    peer,
                    delta: PeerDelta {
                        path: if flags & DELTA_PATH != 0 {
                            Some(get_path(buf, &mut at)?)
                        } else {
                            None
                        },
                        added: get_entries(buf, &mut at)?,
                        removed: get_entries(buf, &mut at)?,
                        routing: if flags & DELTA_ROUTING != 0 {
                            Some(get_routing(buf, &mut at)?)
                        } else {
                            None
                        },
                        replicas: if flags & DELTA_REPLICAS != 0 {
                            Some(get_peers(buf, &mut at)?)
                        } else {
                            None
                        },
                    },
                }
            }
            tag => return Err(format!("unknown record tag {tag}")),
        };
        if at != buf.len() {
            return Err(format!("{} trailing bytes after record", buf.len() - at));
        }
        Ok(record)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_path(buf: &mut Vec<u8>, path: &Path) {
    buf.push(path.len() as u8);
    let mut bits = 0u64;
    for (i, b) in path.bits_iter().enumerate() {
        if b {
            bits |= 1 << (63 - i);
        }
    }
    put_u64(buf, bits);
}

fn put_entries(buf: &mut Vec<u8>, entries: &[DataEntry]) {
    put_u32(buf, entries.len() as u32);
    for e in entries {
        put_u64(buf, e.key.0);
        put_u64(buf, e.id.0);
    }
}

fn put_routing(buf: &mut Vec<u8>, routing: &[(u8, u64, Path)]) {
    put_u32(buf, routing.len() as u32);
    for (level, peer, path) in routing {
        buf.push(*level);
        put_u64(buf, *peer);
        put_path(buf, path);
    }
}

fn put_peers(buf: &mut Vec<u8>, peers: &[u64]) {
    put_u32(buf, peers.len() as u32);
    for p in peers {
        put_u64(buf, *p);
    }
}

fn get_u8(buf: &[u8], at: &mut usize) -> Result<u8, String> {
    let v = *buf.get(*at).ok_or("record truncated (u8)")?;
    *at += 1;
    Ok(v)
}

fn get_u32(buf: &[u8], at: &mut usize) -> Result<u32, String> {
    let bytes = buf.get(*at..*at + 4).ok_or("record truncated (u32)")?;
    *at += 4;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_u64(buf: &[u8], at: &mut usize) -> Result<u64, String> {
    let bytes = buf.get(*at..*at + 8).ok_or("record truncated (u64)")?;
    *at += 8;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_path(buf: &[u8], at: &mut usize) -> Result<Path, String> {
    let len = get_u8(buf, at)? as usize;
    if len > MAX_PATH_LEN {
        return Err(format!("path length {len} exceeds MAX_PATH_LEN"));
    }
    let bits = get_u64(buf, at)?;
    let mut path = Path::root();
    for i in 0..len {
        path = path.child((bits >> (63 - i)) & 1 == 1);
    }
    Ok(path)
}

fn get_entries(buf: &[u8], at: &mut usize) -> Result<Vec<DataEntry>, String> {
    let n = get_u32(buf, at)? as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        entries.push(DataEntry {
            key: Key(get_u64(buf, at)?),
            id: DataId(get_u64(buf, at)?),
        });
    }
    Ok(entries)
}

fn get_routing(buf: &[u8], at: &mut usize) -> Result<Vec<(u8, u64, Path)>, String> {
    let n = get_u32(buf, at)? as usize;
    let mut routing = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let level = get_u8(buf, at)?;
        let peer = get_u64(buf, at)?;
        let path = get_path(buf, at)?;
        routing.push((level, peer, path));
    }
    Ok(routing)
}

fn get_peers(buf: &[u8], at: &mut usize) -> Result<Vec<u64>, String> {
    let n = get_u32(buf, at)? as usize;
    let mut peers = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        peers.push(get_u64(buf, at)?);
    }
    Ok(peers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Meta(MetaImage {
                shard_start: 10,
                shard_len: 11,
                epoch: 3,
                phase: 2,
                now_ms: 600_000,
                seed: 0xBEEF,
            }),
            Record::Image {
                index: 0,
                peer: 12,
                image: PeerImage {
                    path: Path::parse("0110"),
                    entries: vec![
                        DataEntry {
                            key: Key(42),
                            id: DataId(7),
                        },
                        DataEntry {
                            key: Key(u64::MAX),
                            id: DataId(0),
                        },
                    ],
                    routing: vec![(0, 3, Path::parse("1")), (1, 5, Path::parse("00"))],
                    replicas: vec![3, 9],
                },
            },
            Record::Delta {
                index: 1,
                peer: 12,
                delta: PeerDelta {
                    path: Some(Path::parse("01101")),
                    added: vec![DataEntry {
                        key: Key(1),
                        id: DataId(2),
                    }],
                    removed: vec![],
                    routing: None,
                    replicas: Some(vec![4]),
                },
            },
            Record::Delta {
                index: 0,
                peer: 0,
                delta: PeerDelta::default(),
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for record in sample_records() {
            let decoded = Record::decode(&record.encode()).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        for record in sample_records() {
            let wire = record.encode();
            for cut in 0..wire.len() {
                assert!(
                    Record::decode(&wire[..cut]).is_err(),
                    "prefix of length {cut} decoded"
                );
            }
            let mut extra = wire.clone();
            extra.push(0);
            assert!(Record::decode(&extra).is_err());
        }
    }
}
