//! [`DurableStore`]: the journal a cluster worker writes its shard
//! through.
//!
//! The store keeps an in-memory **mirror** of the last journaled image
//! of every `(index, peer)` it has observed.  `observe` diffs the live
//! state against the mirror and appends at most one [`Record`] per
//! call, so every record boundary in the log is a consistent cut of one
//! peer's state — replay after a crash reconstructs exactly the mirror
//! as of the last acknowledged (synced) record, never a hybrid.

use crate::record::{MetaImage, PeerDelta, PeerImage, Record};
use crate::segment::{Log, LogOptions};
use pgrid_core::histogram::LogHistogram;
use pgrid_core::key::DataEntry;
use pgrid_core::path::Path as TriePath;
use pgrid_core::store::KeyStore;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;
use std::time::Duration;

/// Durability counters and the fsync latency distribution, exported
/// into the worker's metrics registry.
#[derive(Clone, Debug, Default)]
pub struct DurableStats {
    /// Records appended this session.
    pub appended_records: u64,
    /// Frame bytes appended this session.
    pub appended_bytes: u64,
    /// Fsync calls this session.
    pub syncs: u64,
    /// Fsync latency distribution, in microseconds.
    pub fsync_micros: LogHistogram,
    /// Records replayed at open.
    pub replayed_records: u64,
    /// Torn segment tails truncated at open.
    pub torn_truncations: u64,
    /// Headerless segment files deleted at open.
    pub deleted_segments: u64,
    /// Compaction runs this session.
    pub compactions: u64,
    /// Bytes reclaimed by compaction this session.
    pub compacted_bytes: u64,
}

/// The mirror image of one peer: what the log last said about it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MirrorImage {
    /// The peer's trie path.
    pub path: TriePath,
    /// Every stored entry.
    pub entries: BTreeSet<DataEntry>,
    /// Routing references as `(level, peer, path)`.
    pub routing: Vec<(u8, u64, TriePath)>,
    /// Replica peers of this peer's partition.
    pub replicas: Vec<u64>,
}

impl MirrorImage {
    fn from_image(image: PeerImage) -> MirrorImage {
        MirrorImage {
            path: image.path,
            entries: image.entries.into_iter().collect(),
            routing: image.routing,
            replicas: image.replicas,
        }
    }

    fn to_image(&self) -> PeerImage {
        PeerImage {
            path: self.path,
            entries: self.entries.iter().copied().collect(),
            routing: self.routing.clone(),
            replicas: self.replicas.clone(),
        }
    }

    fn apply(&mut self, delta: PeerDelta) {
        if let Some(path) = delta.path {
            self.path = path;
        }
        for e in delta.removed {
            self.entries.remove(&e);
        }
        for e in delta.added {
            self.entries.insert(e);
        }
        if let Some(routing) = delta.routing {
            self.routing = routing;
        }
        if let Some(replicas) = delta.replicas {
            self.replicas = replicas;
        }
    }
}

/// Compact once the log grows past this floor…
const COMPACT_MIN_BYTES: u64 = 256 << 10;
/// …and past this multiple of the last checkpoint's size.
const COMPACT_GROWTH_FACTOR: u64 = 4;

/// A journaled view of a worker's shard, layered over [`Log`].
pub struct DurableStore {
    log: Log,
    mirror: BTreeMap<(u32, u32), MirrorImage>,
    meta: Option<MetaImage>,
    stats: DurableStats,
    last_checkpoint_bytes: u64,
}

impl DurableStore {
    /// Opens the journal in `dir`, replaying whatever survived — an
    /// empty or missing directory yields a fresh, unrecovered store.
    pub fn open(dir: &Path, options: LogOptions) -> io::Result<DurableStore> {
        let (log, payloads, outcome) = Log::open(dir, options)?;
        let mut store = DurableStore {
            log,
            mirror: BTreeMap::new(),
            meta: None,
            stats: DurableStats {
                replayed_records: outcome.records as u64,
                torn_truncations: outcome.torn_truncations as u64,
                deleted_segments: outcome.deleted_segments as u64,
                ..DurableStats::default()
            },
            last_checkpoint_bytes: 0,
        };
        for payload in payloads {
            let record = Record::decode(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            store.replay(record);
        }
        Ok(store)
    }

    fn replay(&mut self, record: Record) {
        match record {
            Record::Meta(meta) => self.meta = Some(meta),
            Record::Image { index, peer, image } => {
                self.mirror
                    .insert((index, peer), MirrorImage::from_image(image));
            }
            Record::Delta { index, peer, delta } => {
                self.mirror.entry((index, peer)).or_default().apply(delta);
            }
        }
    }

    /// Whether the log held any prior state.
    pub fn recovered(&self) -> bool {
        self.meta.is_some() || !self.mirror.is_empty()
    }

    /// The last journaled worker metadata.
    pub fn meta(&self) -> Option<&MetaImage> {
        self.meta.as_ref()
    }

    /// Journals new worker metadata (no-op when unchanged).
    pub fn set_meta(&mut self, meta: MetaImage) -> io::Result<bool> {
        if self.meta.as_ref() == Some(&meta) {
            return Ok(false);
        }
        self.append(&Record::Meta(meta.clone()))?;
        self.meta = Some(meta);
        Ok(true)
    }

    /// The recovered per-peer images, keyed by `(index, peer)`.
    pub fn images(&self) -> impl Iterator<Item = (&(u32, u32), &MirrorImage)> {
        self.mirror.iter()
    }

    /// Number of mirrored peers.
    pub fn peer_count(&self) -> usize {
        self.mirror.len()
    }

    /// Journals the difference between the live state of `(index, peer)`
    /// and its mirror: a full image for a first observation, at most one
    /// delta record otherwise.  Returns whether anything was appended.
    pub fn observe(
        &mut self,
        index: u32,
        peer: u32,
        path: TriePath,
        store: &KeyStore,
        routing: &[(u8, u64, TriePath)],
        replicas: &[u64],
    ) -> io::Result<bool> {
        let Some(mirror) = self.mirror.get(&(index, peer)) else {
            let image = PeerImage {
                path,
                entries: store.iter().copied().collect(),
                routing: routing.to_vec(),
                replicas: replicas.to_vec(),
            };
            self.append(&Record::Image {
                index,
                peer,
                image: image.clone(),
            })?;
            self.mirror
                .insert((index, peer), MirrorImage::from_image(image));
            return Ok(true);
        };

        let (added, removed) = set_diff(store, &mirror.entries);
        let delta = PeerDelta {
            path: (mirror.path != path).then_some(path),
            added,
            removed,
            routing: (mirror.routing.as_slice() != routing).then(|| routing.to_vec()),
            replicas: (mirror.replicas.as_slice() != replicas).then(|| replicas.to_vec()),
        };
        if delta.is_empty() {
            return Ok(false);
        }
        self.append(&Record::Delta {
            index,
            peer,
            delta: delta.clone(),
        })?;
        self.mirror
            .get_mut(&(index, peer))
            .expect("mirror entry checked above")
            .apply(delta);
        Ok(true)
    }

    fn append(&mut self, record: &Record) -> io::Result<()> {
        let bytes = self.log.append(&record.encode())?;
        self.stats.appended_records += 1;
        self.stats.appended_bytes += bytes;
        Ok(())
    }

    /// Fsyncs the journal; the sync latency lands in the stats
    /// histogram.  A record is only *acknowledged* — guaranteed to
    /// survive a crash — once a sync after it returned.
    pub fn sync(&mut self) -> io::Result<Duration> {
        let elapsed = self.log.sync()?;
        self.stats.syncs += 1;
        self.stats
            .fsync_micros
            .record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        Ok(elapsed)
    }

    /// Compacts the log into one checkpoint of the mirror when it has
    /// grown past both the size floor and a multiple of the previous
    /// checkpoint.  Returns whether a compaction ran.
    pub fn maybe_compact(&mut self) -> io::Result<bool> {
        let total = self.log.total_bytes();
        if total < COMPACT_MIN_BYTES.max(self.last_checkpoint_bytes * COMPACT_GROWTH_FACTOR) {
            return Ok(false);
        }
        self.compact()?;
        Ok(true)
    }

    /// Unconditionally rewrites the log as one checkpoint of the mirror.
    pub fn compact(&mut self) -> io::Result<()> {
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(self.mirror.len() + 1);
        if let Some(meta) = &self.meta {
            payloads.push(Record::Meta(meta.clone()).encode());
        }
        for (&(index, peer), image) in &self.mirror {
            payloads.push(
                Record::Image {
                    index,
                    peer,
                    image: image.to_image(),
                }
                .encode(),
            );
        }
        let outcome = self.log.compact(payloads.iter().map(|p| p.as_slice()))?;
        self.stats.compactions += 1;
        self.stats.compacted_bytes += outcome.reclaimed_bytes;
        self.last_checkpoint_bytes = outcome.checkpoint_bytes;
        Ok(())
    }

    /// Durability counters for the metrics registry.
    pub fn stats(&self) -> &DurableStats {
        &self.stats
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.log.segment_count()
    }

    /// Total bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.log.total_bytes()
    }
}

/// `(added, removed)` between a live store and a mirror set, both
/// iterated in sorted order (a single merge walk, no hashing).
fn set_diff(live: &KeyStore, mirror: &BTreeSet<DataEntry>) -> (Vec<DataEntry>, Vec<DataEntry>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut a = live.iter().copied().peekable();
    let mut b = mirror.iter().copied().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    added.push(x);
                    a.next();
                } else if y < x {
                    removed.push(y);
                    b.next();
                } else {
                    a.next();
                    b.next();
                }
            }
            (Some(_), None) => {
                added.extend(a.by_ref());
                break;
            }
            (None, Some(_)) => {
                removed.extend(b.by_ref());
                break;
            }
            (None, None) => break,
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgrid_core::key::{DataId, Key};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pgrid-dstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(key: u64, id: u64) -> DataEntry {
        DataEntry {
            key: Key(key),
            id: DataId(id),
        }
    }

    #[test]
    fn observe_then_reopen_round_trips_the_mirror() {
        let dir = temp_dir("roundtrip");
        let mut store = DurableStore::open(&dir, LogOptions::default()).unwrap();
        assert!(!store.recovered());

        let mut ks = KeyStore::new();
        ks.insert(entry(1, 1));
        ks.insert(entry(2, 2));
        let routing = vec![(0u8, 7u64, TriePath::parse("1"))];
        assert!(store
            .observe(0, 3, TriePath::parse("0"), &ks, &routing, &[5])
            .unwrap());
        // Unchanged state appends nothing.
        assert!(!store
            .observe(0, 3, TriePath::parse("0"), &ks, &routing, &[5])
            .unwrap());
        // A mutation appends a delta.
        ks.insert(entry(9, 9));
        ks.remove(&entry(1, 1));
        assert!(store
            .observe(0, 3, TriePath::parse("01"), &ks, &routing, &[5, 6])
            .unwrap());
        store
            .set_meta(MetaImage {
                shard_start: 3,
                shard_len: 1,
                epoch: 0,
                phase: 1,
                now_ms: 60_000,
                seed: 42,
            })
            .unwrap();
        store.sync().unwrap();
        drop(store);

        let reopened = DurableStore::open(&dir, LogOptions::default()).unwrap();
        assert!(reopened.recovered());
        assert_eq!(reopened.meta().unwrap().seed, 42);
        let (&key, image) = reopened.images().next().unwrap();
        assert_eq!(key, (0, 3));
        assert_eq!(image.path, TriePath::parse("01"));
        assert_eq!(
            image.entries.iter().copied().collect::<Vec<_>>(),
            vec![entry(2, 2), entry(9, 9)]
        );
        assert_eq!(image.replicas, vec![5, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_the_mirror_and_shrinks_the_log() {
        let dir = temp_dir("compact");
        let mut store = DurableStore::open(&dir, LogOptions { segment_bytes: 512 }).unwrap();
        let mut ks = KeyStore::new();
        for i in 0..200u64 {
            ks.insert(entry(i, i));
            store
                .observe(0, 1, TriePath::root(), &ks, &[], &[])
                .unwrap();
        }
        store.sync().unwrap();
        let before = store.total_bytes();
        store.compact().unwrap();
        assert!(store.total_bytes() < before);
        drop(store);
        let reopened = DurableStore::open(&dir, LogOptions::default()).unwrap();
        assert_eq!(reopened.images().next().unwrap().1.entries.len(), 200);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
