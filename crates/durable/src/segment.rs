//! The on-disk layer: checksummed append-only segment files and the
//! [`Log`] that owns a directory of them.
//!
//! ## Segment layout
//!
//! ```text
//! seg-<seq>.log
//! +--------+---------+---------+----------------------------------+
//! | magic  | version | seq     | records ...                      |
//! | "PGDL" | u16 LE  | u64 LE  |                                  |
//! +--------+---------+---------+----------------------------------+
//!
//! record = | len u32 LE | crc32 u32 LE | payload (len bytes) |
//! ```
//!
//! Segments are strictly append-only and never reopened for writing: a
//! process that restarts always starts a fresh segment with a higher
//! sequence number, so a torn tail can only exist in the last segment a
//! crashed writer touched.  Recovery scans every segment in sequence
//! order, keeps the longest prefix of records whose checksums verify,
//! and truncates the file to that prefix — a half-written record is
//! discarded, never replayed.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Magic bytes of every segment file.
pub const MAGIC: [u8; 4] = *b"PGDL";

/// On-disk format version.
pub const FORMAT_VERSION: u16 = 1;

/// Bytes of the segment header (magic + version + sequence number).
pub const SEGMENT_HEADER_LEN: u64 = 14;

/// Bytes of a record header (length + checksum).
pub const RECORD_HEADER_LEN: u64 = 8;

/// Upper bound on a single record payload; anything larger in a length
/// field is treated as tail corruption.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:010}.log")
}

fn parse_segment_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One sealed (read-only) segment of the manifest.
#[derive(Clone, Debug)]
pub struct SegmentInfo {
    /// Sequence number (replay order).
    pub seq: u64,
    /// File path.
    pub path: PathBuf,
    /// Bytes of valid data (header + verified records).
    pub bytes: u64,
    /// Number of verified records.
    pub records: u64,
}

/// The verified contents of one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Sequence number from the header (0 when the header itself is torn).
    pub seq: u64,
    /// The record payloads whose checksums verified, in write order.
    pub records: Vec<Vec<u8>>,
    /// Length of the valid prefix; everything past it is a torn tail.
    pub valid_len: u64,
    /// Actual file length on disk.
    pub file_len: u64,
}

/// Reads a segment file, keeping the longest checksum-valid prefix.
///
/// A file too short to hold the header (a crash immediately after
/// creation) scans as `valid_len == 0` with no records — recovery
/// deletes it.  A wrong magic or format version is real corruption and
/// an error, not a torn tail.
pub fn read_segment(path: &Path) -> io::Result<SegmentScan> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let file_len = data.len() as u64;
    if file_len < SEGMENT_HEADER_LEN {
        return Ok(SegmentScan {
            seq: 0,
            records: Vec::new(),
            valid_len: 0,
            file_len,
        });
    }
    if data[0..4] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a segment file (bad magic)", path.display()),
        ));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: unsupported segment version {version}", path.display()),
        ));
    }
    let seq = u64::from_le_bytes(data[6..14].try_into().unwrap());
    let mut records = Vec::new();
    let mut at = SEGMENT_HEADER_LEN as usize;
    while let Some(header) = data.get(at..at + RECORD_HEADER_LEN as usize) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break;
        }
        let start = at + RECORD_HEADER_LEN as usize;
        let Some(payload) = data.get(start..start + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        at = start + len as usize;
    }
    Ok(SegmentScan {
        seq,
        records,
        valid_len: at as u64,
        file_len,
    })
}

/// The active (append) segment.
struct SegmentWriter {
    file: File,
    path: PathBuf,
    seq: u64,
    bytes: u64,
    records: u64,
}

impl SegmentWriter {
    fn create(dir: &Path, seq: u64) -> io::Result<SegmentWriter> {
        let path = dir.join(segment_file_name(seq));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&seq.to_le_bytes());
        file.write_all(&header)?;
        Ok(SegmentWriter {
            file,
            path,
            seq,
            bytes: SEGMENT_HEADER_LEN,
            records: 0,
        })
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        assert!(
            payload.len() as u64 <= MAX_RECORD_LEN as u64,
            "record payload exceeds MAX_RECORD_LEN"
        );
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(frame.len() as u64)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Tuning knobs of a [`Log`].
#[derive(Copy, Clone, Debug)]
pub struct LogOptions {
    /// Rotate the active segment once it grows past this many bytes.
    pub segment_bytes: u64,
}

impl Default for LogOptions {
    fn default() -> LogOptions {
        LogOptions {
            segment_bytes: 1 << 20,
        }
    }
}

/// What [`Log::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct ReplayOutcome {
    /// Record payloads replayed, oldest first.
    pub records: usize,
    /// Segments whose torn tail was truncated away.
    pub torn_truncations: usize,
    /// Headerless or empty segment files deleted during recovery.
    pub deleted_segments: usize,
}

/// What one [`Log::compact`] call reclaimed.
#[derive(Clone, Debug, Default)]
pub struct CompactOutcome {
    /// Bytes of segment data deleted.
    pub reclaimed_bytes: u64,
    /// Bytes of the freshly written checkpoint segment.
    pub checkpoint_bytes: u64,
    /// Segments deleted.
    pub segments_removed: usize,
}

/// An append-only log over a directory of segment files with an
/// in-memory manifest: the sealed segments plus the active writer.
pub struct Log {
    dir: PathBuf,
    options: LogOptions,
    sealed: Vec<SegmentInfo>,
    writer: SegmentWriter,
}

impl Log {
    /// Opens (or creates) the log in `dir`, replaying every verified
    /// record in segment order.  Torn tails are truncated on disk;
    /// headerless files are deleted; a fresh segment is started for new
    /// appends so sealed files are never rewritten.
    pub fn open(dir: &Path, options: LogOptions) -> io::Result<(Log, Vec<Vec<u8>>, ReplayOutcome)> {
        std::fs::create_dir_all(dir)?;
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_segment_file_name(name) {
                found.push((seq, entry.path()));
            }
        }
        found.sort_by_key(|(seq, _)| *seq);

        let mut outcome = ReplayOutcome::default();
        let mut payloads = Vec::new();
        let mut sealed = Vec::new();
        let mut max_seq = 0u64;
        for (name_seq, path) in found {
            max_seq = max_seq.max(name_seq);
            let scan = read_segment(&path)?;
            if scan.valid_len == 0 {
                // Crash before the header made it to disk: nothing to keep.
                std::fs::remove_file(&path)?;
                outcome.deleted_segments += 1;
                continue;
            }
            if scan.valid_len < scan.file_len {
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(scan.valid_len)?;
                outcome.torn_truncations += 1;
            }
            outcome.records += scan.records.len();
            sealed.push(SegmentInfo {
                seq: scan.seq,
                path,
                bytes: scan.valid_len,
                records: scan.records.len() as u64,
            });
            payloads.extend(scan.records);
        }
        let writer = SegmentWriter::create(dir, max_seq + 1)?;
        Ok((
            Log {
                dir: dir.to_path_buf(),
                options,
                sealed,
                writer,
            },
            payloads,
            outcome,
        ))
    }

    /// Appends one record, rotating the active segment first when it is
    /// full.  Returns the bytes written (frame, not payload).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        if self.writer.records > 0 && self.writer.bytes >= self.options.segment_bytes {
            self.rotate()?;
        }
        self.writer.append(payload)
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.writer.sync()?;
        let next = self.writer.seq + 1;
        self.sealed.push(SegmentInfo {
            seq: self.writer.seq,
            path: self.writer.path.clone(),
            bytes: self.writer.bytes,
            records: self.writer.records,
        });
        self.writer = SegmentWriter::create(&self.dir, next)?;
        Ok(())
    }

    /// Fsyncs the active segment, returning the measured sync latency.
    pub fn sync(&mut self) -> io::Result<Duration> {
        let started = Instant::now();
        self.writer.sync()?;
        Ok(started.elapsed())
    }

    /// Rewrites the log as one checkpoint: `live` payloads go into a
    /// fresh segment, every older segment is deleted, and a new empty
    /// segment becomes the active writer.
    ///
    /// Crash-safe without a manifest file because replay is
    /// last-writer-wins: a crash *before* the deletions replays the old
    /// segments first and the (possibly partial) checkpoint after, and
    /// checkpoint records are full images, so whatever prefix of the
    /// checkpoint survived simply overwrites the corresponding state.
    pub fn compact<'a, I>(&mut self, live: I) -> io::Result<CompactOutcome>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        self.writer.sync()?;
        let old_tail = SegmentInfo {
            seq: self.writer.seq,
            path: self.writer.path.clone(),
            bytes: self.writer.bytes,
            records: self.writer.records,
        };
        let checkpoint_seq = self.writer.seq + 1;
        let mut checkpoint = SegmentWriter::create(&self.dir, checkpoint_seq)?;
        for payload in live {
            checkpoint.append(payload)?;
        }
        checkpoint.sync()?;

        let mut outcome = CompactOutcome {
            checkpoint_bytes: checkpoint.bytes,
            ..CompactOutcome::default()
        };
        for old in self.sealed.drain(..).chain(std::iter::once(old_tail)) {
            outcome.reclaimed_bytes += old.bytes;
            outcome.segments_removed += 1;
            std::fs::remove_file(&old.path)?;
        }
        self.sealed.push(SegmentInfo {
            seq: checkpoint.seq,
            path: checkpoint.path.clone(),
            bytes: checkpoint.bytes,
            records: checkpoint.records,
        });
        self.writer = SegmentWriter::create(&self.dir, checkpoint_seq + 1)?;
        Ok(outcome)
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Total bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.writer.bytes
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pgrid-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_sync_reopen_replays_in_order() {
        let dir = temp_dir("basic");
        let (mut log, replayed, _) = Log::open(&dir, LogOptions::default()).unwrap();
        assert!(replayed.is_empty());
        for i in 0u32..100 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        log.sync().unwrap();
        drop(log);
        let (_, replayed, outcome) = Log::open(&dir, LogOptions::default()).unwrap();
        assert_eq!(outcome.records, 100);
        assert_eq!(outcome.torn_truncations, 0);
        let values: Vec<u32> = replayed
            .iter()
            .map(|p| u32::from_le_bytes(p[..].try_into().unwrap()))
            .collect();
        assert_eq!(values, (0..100).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_seals_segments_and_replay_spans_them() {
        let dir = temp_dir("rotate");
        let options = LogOptions { segment_bytes: 64 };
        let (mut log, _, _) = Log::open(&dir, options).unwrap();
        for i in 0u32..50 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        log.sync().unwrap();
        assert!(log.segment_count() > 2, "tiny segments must rotate");
        drop(log);
        let (_, replayed, _) = Log::open(&dir, options).unwrap();
        assert_eq!(replayed.len(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = temp_dir("torn");
        let (mut log, _, _) = Log::open(&dir, LogOptions::default()).unwrap();
        for i in 0u64..10 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        log.sync().unwrap();
        drop(log);
        // Corrupt the tail: chop 3 bytes off the only data segment.
        let seg = dir.join(segment_file_name(1));
        let len = std::fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (_, replayed, outcome) = Log::open(&dir, LogOptions::default()).unwrap();
        assert_eq!(outcome.torn_truncations, 1);
        assert_eq!(replayed.len(), 9, "only the torn record is lost");
        // The truncated file now ends exactly at the valid prefix.
        let scan = read_segment(&seg).unwrap();
        assert_eq!(scan.valid_len, scan.file_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reclaims_history_and_survives_reopen() {
        let dir = temp_dir("compact");
        let options = LogOptions { segment_bytes: 128 };
        let (mut log, _, _) = Log::open(&dir, options).unwrap();
        for i in 0u64..200 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        log.sync().unwrap();
        let before = log.total_bytes();
        let live: Vec<Vec<u8>> = vec![b"live-1".to_vec(), b"live-2".to_vec()];
        let outcome = log.compact(live.iter().map(|p| p.as_slice())).unwrap();
        assert!(outcome.reclaimed_bytes > 0);
        assert!(outcome.segments_removed > 0);
        assert!(log.total_bytes() < before);
        assert_eq!(log.segment_count(), 2, "checkpoint + fresh active segment");
        drop(log);
        let (_, replayed, _) = Log::open(&dir, options).unwrap();
        assert_eq!(replayed, live);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
