//! Log-structured persistence for P-Grid shards.
//!
//! Zero-dependency (pgrid-core only) durability layer: append-only
//! checksummed segment files ([`segment`]), a logical journal record
//! codec ([`record`]), and the [`DurableStore`] wrapper the cluster
//! worker threads its `KeyStore` mutations, routing-table updates and
//! peer identity changes through.
//!
//! Design in one paragraph: the worker observes its hosted peers after
//! each pacing slice and at every phase barrier; `DurableStore` diffs
//! each peer against an in-memory mirror of the last journaled image
//! and appends one delta record per changed peer.  Records are framed
//! `[len | crc32 | payload]` inside `seg-<seq>.log` files; recovery
//! scans segments in sequence order, truncates the first torn tail,
//! and rebuilds the mirror by last-writer-wins replay.  Compaction
//! rewrites the mirror as one checkpoint segment and deletes the
//! history — safe without a manifest file because full images are
//! idempotent under replay.  A relaunched worker turns the mirror back
//! into live peers (the warm-restart path) and reconciles with live
//! replicas instead of pulling full snapshots.

pub mod record;
pub mod segment;
pub mod store;

pub use record::{MetaImage, PeerDelta, PeerImage, Record};
pub use segment::{crc32, Log, LogOptions, ReplayOutcome, SegmentScan};
pub use store::{DurableStats, DurableStore, MirrorImage};
