//! Crash-safety properties of the durable log.
//!
//! Three layers of the same guarantee:
//!
//! * the record codec round-trips arbitrary records and rejects every
//!   strict prefix (property test);
//! * the segment layer, truncated at **every** byte offset — the crash
//!   matrix a torn write can produce — recovers exactly the records whose
//!   frames fit below the cut (exhaustive);
//! * the [`DurableStore`] mirror, rebuilt from a log killed at randomized
//!   byte offsets, always equals the in-memory reference state after some
//!   prefix of the appended records — one `observe` is one record, so
//!   every record boundary is a consistent cut.

use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::Path;
use pgrid_core::store::KeyStore;
use pgrid_durable::{
    DurableStore, Log, LogOptions, MetaImage, MirrorImage, PeerDelta, PeerImage, Record,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Bytes before the first record frame of a segment file (magic,
/// format version, sequence number).
const SEGMENT_HEADER_LEN: u64 = 14;
/// Bytes of one record frame header (length + crc32).
const RECORD_HEADER_LEN: u64 = 8;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pgrid-durable-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn entry(key: u64, id: u64) -> DataEntry {
    DataEntry {
        key: Key(key),
        id: DataId(id),
    }
}

fn arbitrary_path(rng: &mut StdRng) -> Path {
    let len = rng.gen_range(0..=12);
    let mut path = Path::root();
    for _ in 0..len {
        path = path.child(rng.gen_bool(0.5));
    }
    path
}

fn arbitrary_entries(rng: &mut StdRng, max: usize) -> Vec<DataEntry> {
    (0..rng.gen_range(0..=max))
        .map(|_| entry(rng.gen(), rng.gen()))
        .collect()
}

fn arbitrary_routing(rng: &mut StdRng) -> Vec<(u8, u64, Path)> {
    (0..rng.gen_range(0..=8))
        .map(|_| (rng.gen_range(0..16), rng.gen(), arbitrary_path(rng)))
        .collect()
}

/// One random journal record; `variant` cycles so every shape is hit no
/// matter what the seed draws.
fn arbitrary_record(variant: u8, rng: &mut StdRng) -> Record {
    match variant % 3 {
        0 => Record::Meta(MetaImage {
            shard_start: rng.gen(),
            shard_len: rng.gen(),
            epoch: rng.gen(),
            phase: rng.gen(),
            now_ms: rng.gen(),
            seed: rng.gen(),
        }),
        1 => Record::Image {
            index: rng.gen(),
            peer: rng.gen(),
            image: PeerImage {
                path: arbitrary_path(rng),
                entries: arbitrary_entries(rng, 16),
                routing: arbitrary_routing(rng),
                replicas: (0..rng.gen_range(0..8)).map(|_| rng.gen()).collect(),
            },
        },
        _ => Record::Delta {
            index: rng.gen(),
            peer: rng.gen(),
            delta: PeerDelta {
                path: rng.gen_bool(0.5).then(|| arbitrary_path(rng)),
                added: arbitrary_entries(rng, 8),
                removed: arbitrary_entries(rng, 8),
                routing: rng.gen_bool(0.5).then(|| arbitrary_routing(rng)),
                replicas: rng
                    .gen_bool(0.5)
                    .then(|| (0..rng.gen_range(0..8)).map(|_| rng.gen()).collect()),
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn records_roundtrip(seed in any::<u64>(), variant in 0u8..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let record = arbitrary_record(variant, &mut rng);
        let decoded = Record::decode(&record.encode());
        prop_assert_eq!(decoded.ok(), Some(record));
    }

    #[test]
    fn record_prefixes_are_rejected(seed in any::<u64>(), variant in 0u8..3, cut in 0usize..8192) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wire = arbitrary_record(variant, &mut rng).encode();
        let cut = cut % wire.len();
        prop_assert!(Record::decode(&wire[..cut]).is_err(), "prefix of length {} decoded", cut);
    }
}

/// Truncating one segment at *every* byte offset must recover exactly the
/// records whose frames lie wholly below the cut — never an error, never a
/// partial record, and reopening after recovery is idempotent.
#[test]
fn torn_tail_at_every_byte_offset_recovers_the_valid_prefix() {
    let source = temp_dir("torn-src");
    // Varied payload sizes so cuts land in headers, payloads and on
    // frame boundaries alike.
    let payloads: Vec<Vec<u8>> = (0u8..10)
        .map(|i| (0..=i).map(|j| i * 16 + j).collect())
        .collect();
    let (mut log, replayed, _) = Log::open(&source, LogOptions::default()).unwrap();
    assert!(replayed.is_empty());
    let mut boundaries = vec![SEGMENT_HEADER_LEN];
    for payload in &payloads {
        log.append(payload).unwrap();
        boundaries.push(boundaries.last().unwrap() + RECORD_HEADER_LEN + payload.len() as u64);
    }
    log.sync().unwrap();
    drop(log);

    let segment = source.join("seg-0000000001.log");
    let bytes = std::fs::read(&segment).unwrap();
    assert_eq!(bytes.len() as u64, *boundaries.last().unwrap());

    let work = temp_dir("torn-cut");
    for cut in 0..=bytes.len() {
        let _ = std::fs::remove_dir_all(&work);
        std::fs::create_dir_all(&work).unwrap();
        std::fs::write(work.join("seg-0000000001.log"), &bytes[..cut]).unwrap();
        let expected = boundaries
            .iter()
            .filter(|&&b| b <= cut as u64)
            .count()
            .saturating_sub(1);
        let (log, recovered, outcome) = Log::open(&work, LogOptions::default()).unwrap();
        assert_eq!(
            recovered,
            payloads[..expected].to_vec(),
            "cut at byte {cut}"
        );
        if (cut as u64) < SEGMENT_HEADER_LEN {
            assert_eq!(outcome.deleted_segments, 1, "cut at byte {cut}");
        } else if cut < bytes.len() && boundaries[expected] < cut as u64 {
            assert_eq!(outcome.torn_truncations, 1, "cut at byte {cut}");
        }
        drop(log);
        // Recovery truncated the tail on disk: a second open replays the
        // same prefix without finding anything more to repair.
        let (_, again, outcome) = Log::open(&work, LogOptions::default()).unwrap();
        assert_eq!(again, recovered, "reopen after cut at byte {cut}");
        assert_eq!(
            outcome.torn_truncations, 0,
            "reopen after cut at byte {cut}"
        );
    }
    let _ = std::fs::remove_dir_all(&source);
    let _ = std::fs::remove_dir_all(&work);
}

/// Reference state of the crash matrix: the mirror the store must hold
/// after replaying some prefix of the appended records.
type Snapshot = (Option<MetaImage>, BTreeMap<(u32, u32), MirrorImage>);

fn snapshot(store: &DurableStore) -> Snapshot {
    (
        store.meta().cloned(),
        store
            .images()
            .map(|(&key, image)| (key, image.clone()))
            .collect(),
    )
}

/// Builds a multi-peer journal one record at a time, remembering the
/// mirror after every append and the byte boundary each record ends at.
fn build_reference(dir: &std::path::Path, seed: u64) -> (Vec<u64>, Vec<Snapshot>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = DurableStore::open(dir, LogOptions::default()).unwrap();
    let mut stores: BTreeMap<u32, (KeyStore, Path)> = (0..3u32)
        .map(|p| (p, (KeyStore::new(), Path::root())))
        .collect();
    let mut boundaries = vec![SEGMENT_HEADER_LEN];
    let mut snapshots = vec![snapshot(&store)];
    for step in 0..40u64 {
        let appended = if step % 7 == 6 {
            store
                .set_meta(MetaImage {
                    shard_start: 0,
                    shard_len: 3,
                    epoch: step / 7,
                    phase: (step / 7) as u8,
                    now_ms: step * 1_000,
                    seed,
                })
                .unwrap()
        } else {
            let peer = rng.gen_range(0..3u32);
            let (ks, path) = stores.get_mut(&peer).unwrap();
            for _ in 0..rng.gen_range(1..4) {
                ks.insert(entry(rng.gen(), rng.gen()));
            }
            if rng.gen_bool(0.3) {
                let victim = ks.iter().next().copied();
                if let Some(victim) = victim {
                    ks.remove(&victim);
                }
            }
            if rng.gen_bool(0.3) {
                *path = path.child(rng.gen_bool(0.5));
            }
            let routing = vec![(0u8, u64::from(peer) + 10, *path)];
            store
                .observe(0, peer, *path, ks, &routing, &[u64::from(peer) + 20])
                .unwrap()
        };
        if appended {
            boundaries.push(SEGMENT_HEADER_LEN + store.stats().appended_bytes);
            snapshots.push(snapshot(&store));
        }
    }
    store.sync().unwrap();
    assert_eq!(store.segment_count(), 1, "matrix must fit one segment");
    (boundaries, snapshots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Kill the writer at a random byte offset: the recovered mirror must
    // equal the in-memory reference after the longest record prefix below
    // the cut — a state the live store actually passed through.
    #[test]
    fn killed_writer_replays_to_a_consistent_cut(cut_seed in any::<u64>()) {
        let source = temp_dir("matrix-src");
        let (boundaries, snapshots) = build_reference(&source, 0xD15C);
        let bytes = std::fs::read(source.join("seg-0000000001.log")).unwrap();
        prop_assert_eq!(bytes.len() as u64, *boundaries.last().unwrap());

        let cut = StdRng::seed_from_u64(cut_seed).gen_range(0..=bytes.len());
        let work = temp_dir("matrix-cut");
        std::fs::create_dir_all(&work).unwrap();
        std::fs::write(work.join("seg-0000000001.log"), &bytes[..cut]).unwrap();

        let prefix = boundaries
            .iter()
            .filter(|&&b| b <= cut as u64)
            .count()
            .saturating_sub(1);
        let recovered = DurableStore::open(&work, LogOptions::default()).unwrap();
        let (meta, images) = snapshot(&recovered);
        let (ref expected_meta, ref expected_images) = snapshots[prefix];
        prop_assert!(
            &meta == expected_meta,
            "meta after cut at byte {}: {:?} != {:?}",
            cut,
            meta,
            expected_meta
        );
        prop_assert!(
            &images == expected_images,
            "mirror after cut at byte {}",
            cut
        );

        let _ = std::fs::remove_dir_all(&source);
        let _ = std::fs::remove_dir_all(&work);
    }
}
