//! Minimal JSON string escaping shared by the trace and flight-recorder
//! serialisers (the workspace has no serde; every JSON artifact in this
//! repo is hand-rolled).

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn escape_covers_controls_and_quotes() {
        assert_eq!(super::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::escape("\u{1}"), "\\u0001");
        assert_eq!(super::escape("plain"), "plain");
    }
}
