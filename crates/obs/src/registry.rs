//! The unified metrics registry: counters, gauges and log-histogram
//! metrics with label sets, one validated Prometheus text encoder, and a
//! compact wire codec for streaming snapshots across the cluster control
//! plane.
//!
//! The registry replaces the four hand-rolled `metrics_text` renderers
//! that grew independently in `pgrid-transport`, `pgrid-net` and
//! `pgrid-cluster`.  Producers populate a registry from their own state
//! (snapshot style — cheap, no atomics on the hot paths) and call
//! [`MetricsRegistry::encode`]; consumers that aggregate several
//! processes call [`MetricsRegistry::absorb`] with an extra
//! distinguishing label (e.g. `worker="1"`).
//!
//! Metric and label names are validated **at registration** against the
//! Prometheus data-model grammar, so an invalid name is a panic at the
//! call site that introduced it rather than a silently unscrapeable
//! series; help text and label values are escaped at encode time.

use pgrid_core::histogram::LogHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What kind of metric a family holds.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing `u64` (name should end in `_total`).
    Counter,
    /// An instantaneous `f64` measurement.
    Gauge,
    /// A `LogHistogram` of `u64` observations.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(LogHistogram),
}

/// One metric family: a help string, a kind, and the labelled series.
#[derive(Clone, Debug, PartialEq)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the sorted label pairs; the empty key is the bare series.
    series: BTreeMap<Vec<(String, String)>, Value>,
}

/// A set of metric families, encodable as Prometheus exposition text.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

/// `true` when `name` matches the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `true` when `name` matches the label-name grammar
/// `[a-zA-Z_][a-zA-Z0-9_]*` and is not a reserved `__` name.
pub fn valid_label_name(name: &str) -> bool {
    if name.starts_with("__") {
        return false;
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value (`\`, `"` and newline, per the exposition spec).
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a help string (`\` and newline, per the exposition spec).
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Family {
        assert!(
            valid_metric_name(name),
            "invalid Prometheus metric name: {name:?}"
        );
        let entry = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind,
                series: BTreeMap::new(),
            });
        assert!(
            entry.kind == kind,
            "metric {name} registered as {} and again as {}",
            entry.kind.as_str(),
            kind.as_str()
        );
        entry
    }

    fn checked_key(name: &str, labels: &[(&str, &str)]) -> Vec<(String, String)> {
        for (label, _) in labels {
            assert!(
                valid_label_name(label),
                "invalid Prometheus label name {label:?} on metric {name}"
            );
            assert!(
                *label != "le",
                "label \"le\" on metric {name} is reserved for histogram buckets"
            );
        }
        let key = label_key(labels);
        assert!(
            key.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate label name on metric {name}"
        );
        key
    }

    /// Sets a counter series to an absolute value (snapshot style).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let key = Self::checked_key(name, labels);
        self.family(name, help, MetricKind::Counter)
            .series
            .insert(key, Value::Counter(value));
    }

    /// Adds to a counter series (creating it at zero first).
    pub fn add_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], delta: u64) {
        let key = Self::checked_key(name, labels);
        let slot = self
            .family(name, help, MetricKind::Counter)
            .series
            .entry(key)
            .or_insert(Value::Counter(0));
        if let Value::Counter(v) = slot {
            *v += delta;
        }
    }

    /// Sets a gauge series.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let key = Self::checked_key(name, labels);
        self.family(name, help, MetricKind::Gauge)
            .series
            .insert(key, Value::Gauge(value));
    }

    /// Merges a histogram snapshot into a histogram series (bucketwise
    /// addition when the series already exists).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: &LogHistogram,
    ) {
        let key = Self::checked_key(name, labels);
        let slot = self
            .family(name, help, MetricKind::Histogram)
            .series
            .entry(key)
            .or_insert_with(|| Value::Histogram(LogHistogram::new()));
        if let Value::Histogram(h) = slot {
            h.merge(histogram);
        }
    }

    /// Number of registered families.
    pub fn family_count(&self) -> usize {
        self.families.len()
    }

    /// Total number of series across all families.
    pub fn series_count(&self) -> usize {
        self.families.values().map(|f| f.series.len()).sum()
    }

    /// Folds every series of `other` into this registry, optionally
    /// tagging each incoming series with one extra label — the cluster
    /// coordinator absorbs each worker's snapshot under
    /// `worker="<shard>"`, so merged series stay distinguishable and no
    /// cross-process summing semantics are needed.  Series that collide
    /// exactly (same name, same final label set) are summed for counters
    /// and histograms and overwritten for gauges.
    pub fn absorb(&mut self, other: &MetricsRegistry, extra: Option<(&str, &str)>) {
        for (name, family) in &other.families {
            let mine = self.family(name, &family.help, family.kind);
            for (labels, value) in &family.series {
                let mut key = labels.clone();
                if let Some((k, v)) = extra {
                    key.push((k.to_string(), v.to_string()));
                    key.sort();
                }
                match (
                    mine.series.entry(key).or_insert_with(|| match value {
                        Value::Counter(_) => Value::Counter(0),
                        Value::Gauge(_) => Value::Gauge(0.0),
                        Value::Histogram(_) => Value::Histogram(LogHistogram::new()),
                    }),
                    value,
                ) {
                    (Value::Counter(mine), Value::Counter(theirs)) => *mine += theirs,
                    (Value::Gauge(mine), Value::Gauge(theirs)) => *mine = *theirs,
                    (Value::Histogram(mine), Value::Histogram(theirs)) => mine.merge(theirs),
                    _ => unreachable!("family kind already checked"),
                }
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// families in name order, one `# HELP`/`# TYPE` pair per family,
    /// series in label order, histograms as cumulative `_bucket{le=...}`
    /// plus `_sum`/`_count`.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, value) in &family.series {
                match value {
                    Value::Counter(v) => {
                        let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                    }
                    Value::Gauge(v) => {
                        let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                    }
                    Value::Histogram(h) => {
                        for (upper, cumulative) in h.cumulative_buckets() {
                            let le = upper.to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, Some(("le", &le)))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(labels, Some(("le", "+Inf"))),
                            h.total()
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum());
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            h.total()
                        );
                    }
                }
            }
        }
        out
    }

    /// Serialises the registry for the cluster control plane (workers
    /// stream snapshots to the coordinator at each phase barrier).
    pub fn encode_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u32(&mut buf, self.families.len() as u32);
        for (name, family) in &self.families {
            put_str(&mut buf, name);
            put_str(&mut buf, &family.help);
            buf.push(match family.kind {
                MetricKind::Counter => 0,
                MetricKind::Gauge => 1,
                MetricKind::Histogram => 2,
            });
            put_u32(&mut buf, family.series.len() as u32);
            for (labels, value) in &family.series {
                buf.push(labels.len() as u8);
                for (k, v) in labels {
                    put_str(&mut buf, k);
                    put_str(&mut buf, v);
                }
                match value {
                    Value::Counter(v) => put_u64(&mut buf, *v),
                    Value::Gauge(v) => put_u64(&mut buf, v.to_bits()),
                    Value::Histogram(h) => {
                        let sparse = h.sparse_buckets();
                        put_u32(&mut buf, sparse.len() as u32);
                        for (bucket, count) in sparse {
                            put_u16(&mut buf, bucket);
                            put_u64(&mut buf, count);
                        }
                        put_u64(&mut buf, h.sum());
                        put_u64(&mut buf, h.max());
                    }
                }
            }
        }
        buf
    }

    /// Decodes a registry produced by [`MetricsRegistry::encode_wire`].
    pub fn decode_wire(buf: &[u8]) -> Result<Self, String> {
        let mut at = 0usize;
        let mut reg = MetricsRegistry::new();
        let n_families = get_u32(buf, &mut at)?;
        for _ in 0..n_families {
            let name = get_str(buf, &mut at)?;
            let help = get_str(buf, &mut at)?;
            let kind = match get_u8(buf, &mut at)? {
                0 => MetricKind::Counter,
                1 => MetricKind::Gauge,
                2 => MetricKind::Histogram,
                k => return Err(format!("unknown metric kind {k}")),
            };
            if !valid_metric_name(&name) {
                return Err(format!("invalid metric name on the wire: {name:?}"));
            }
            let n_series = get_u32(buf, &mut at)?;
            let family = reg.families.entry(name).or_insert_with(|| Family {
                help,
                kind,
                series: BTreeMap::new(),
            });
            for _ in 0..n_series {
                let n_labels = get_u8(buf, &mut at)?;
                let mut labels = Vec::with_capacity(n_labels as usize);
                for _ in 0..n_labels {
                    let k = get_str(buf, &mut at)?;
                    if !valid_label_name(&k) {
                        return Err(format!("invalid label name on the wire: {k:?}"));
                    }
                    let v = get_str(buf, &mut at)?;
                    labels.push((k, v));
                }
                labels.sort();
                let value = match kind {
                    MetricKind::Counter => Value::Counter(get_u64(buf, &mut at)?),
                    MetricKind::Gauge => Value::Gauge(f64::from_bits(get_u64(buf, &mut at)?)),
                    MetricKind::Histogram => {
                        let n_buckets = get_u32(buf, &mut at)?;
                        let mut sparse = Vec::with_capacity(n_buckets as usize);
                        for _ in 0..n_buckets {
                            let bucket = get_u16(buf, &mut at)?;
                            let count = get_u64(buf, &mut at)?;
                            sparse.push((bucket, count));
                        }
                        let sum = get_u64(buf, &mut at)?;
                        let max = get_u64(buf, &mut at)?;
                        Value::Histogram(LogHistogram::from_sparse(&sparse, sum, max))
                    }
                };
                family.series.insert(labels, value);
            }
        }
        if at != buf.len() {
            return Err(format!("{} trailing bytes after registry", buf.len() - at));
        }
        Ok(reg)
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_u8(buf: &[u8], at: &mut usize) -> Result<u8, String> {
    let v = *buf.get(*at).ok_or("registry frame truncated (u8)")?;
    *at += 1;
    Ok(v)
}

fn get_u16(buf: &[u8], at: &mut usize) -> Result<u16, String> {
    let bytes = buf
        .get(*at..*at + 2)
        .ok_or("registry frame truncated (u16)")?;
    *at += 2;
    Ok(u16::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_u32(buf: &[u8], at: &mut usize) -> Result<u32, String> {
    let bytes = buf
        .get(*at..*at + 4)
        .ok_or("registry frame truncated (u32)")?;
    *at += 4;
    Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_u64(buf: &[u8], at: &mut usize) -> Result<u64, String> {
    let bytes = buf
        .get(*at..*at + 8)
        .ok_or("registry frame truncated (u64)")?;
    *at += 8;
    Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_str(buf: &[u8], at: &mut usize) -> Result<String, String> {
    let len = get_u32(buf, at)? as usize;
    let bytes = buf
        .get(*at..*at + len)
        .ok_or("registry frame truncated (str)")?;
    *at += len;
    String::from_utf8(bytes.to_vec()).map_err(|e| format!("non-utf8 string on the wire: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation_matches_the_grammar() {
        for good in ["a", "pgrid_net_queries_total", "a:b", "_x9"] {
            assert!(valid_metric_name(good), "{good}");
        }
        for bad in ["", "9x", "a-b", "a b", "a\"b"] {
            assert!(!valid_metric_name(bad), "{bad}");
        }
        assert!(valid_label_name("peer"));
        assert!(!valid_label_name("__reserved"));
        assert!(!valid_label_name("le-gacy"));
    }

    #[test]
    #[should_panic(expected = "invalid Prometheus metric name")]
    fn invalid_metric_name_panics_at_registration() {
        MetricsRegistry::new().counter("bad-name", "x", &[], 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter and again as gauge")]
    fn kind_conflicts_panic() {
        let mut reg = MetricsRegistry::new();
        reg.counter("pgrid_x_total", "x", &[], 1);
        reg.gauge("pgrid_x_total", "x", &[], 1.0);
    }

    #[test]
    fn encode_emits_one_header_per_family_and_sorted_series() {
        let mut reg = MetricsRegistry::new();
        reg.counter("pgrid_b_total", "b help", &[("peer", "2")], 7);
        reg.counter("pgrid_b_total", "b help", &[("peer", "1")], 5);
        reg.gauge("pgrid_a", "a help \"quoted\"\nsecond", &[], 1.5);
        let text = reg.encode();
        let a_at = text.find("# HELP pgrid_a").unwrap();
        let b_at = text.find("# HELP pgrid_b_total").unwrap();
        assert!(a_at < b_at, "families must render in name order");
        assert!(text.contains("# HELP pgrid_a a help \"quoted\"\\nsecond"));
        assert!(text.contains("pgrid_a 1.5"));
        let one = text.find("pgrid_b_total{peer=\"1\"} 5").unwrap();
        let two = text.find("pgrid_b_total{peer=\"2\"} 7").unwrap();
        assert!(one < two, "series must render in label order");
        assert_eq!(text.matches("# TYPE pgrid_b_total counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("pgrid_g", "g", &[("path", "a\"b\\c\nd")], 2.0);
        assert!(reg.encode().contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn histogram_series_render_cumulative_buckets_with_labels() {
        let mut h = LogHistogram::new();
        h.record(1);
        h.record(1);
        h.record(100);
        let mut reg = MetricsRegistry::new();
        reg.histogram("pgrid_latency_ms", "latency", &[("index", "0")], &h);
        let text = reg.encode();
        assert!(text.contains("# TYPE pgrid_latency_ms histogram"));
        assert!(text.contains("pgrid_latency_ms_bucket{index=\"0\",le=\"1\"} 2"));
        assert!(text.contains("pgrid_latency_ms_bucket{index=\"0\",le=\"+Inf\"} 3"));
        assert!(text.contains("pgrid_latency_ms_sum{index=\"0\"} 102"));
        assert!(text.contains("pgrid_latency_ms_count{index=\"0\"} 3"));
    }

    #[test]
    fn absorb_tags_incoming_series_and_merges_histograms() {
        let mut worker = MetricsRegistry::new();
        worker.counter("pgrid_frames_total", "frames", &[], 10);
        let mut h = LogHistogram::new();
        h.record(4);
        worker.histogram("pgrid_latency_ms", "latency", &[], &h);

        let mut merged = MetricsRegistry::new();
        merged.absorb(&worker, Some(("worker", "0")));
        merged.absorb(&worker, Some(("worker", "1")));
        let text = merged.encode();
        assert!(text.contains("pgrid_frames_total{worker=\"0\"} 10"));
        assert!(text.contains("pgrid_frames_total{worker=\"1\"} 10"));
        assert!(text.contains("pgrid_latency_ms_count{worker=\"1\"} 1"));

        // Absorbing without a tag sums counters exactly.
        let mut sum = MetricsRegistry::new();
        sum.absorb(&worker, None);
        sum.absorb(&worker, None);
        assert!(sum.encode().contains("pgrid_frames_total 20"));
    }

    #[test]
    fn wire_round_trip_preserves_the_registry() {
        let mut reg = MetricsRegistry::new();
        reg.counter("pgrid_c_total", "c", &[("peer", "3"), ("link", "tcp")], 42);
        reg.gauge("pgrid_g", "g", &[], -2.25);
        let mut h = LogHistogram::new();
        for v in [1u64, 9, 200, 4096] {
            h.record(v);
        }
        reg.histogram("pgrid_h_ms", "h", &[("index", "1")], &h);
        let rebuilt = MetricsRegistry::decode_wire(&reg.encode_wire()).unwrap();
        assert_eq!(rebuilt, reg);
        assert_eq!(rebuilt.encode(), reg.encode());
    }

    #[test]
    fn wire_decode_rejects_truncation_and_trailing_bytes() {
        let mut reg = MetricsRegistry::new();
        reg.counter("pgrid_c_total", "c", &[], 1);
        let wire = reg.encode_wire();
        assert!(MetricsRegistry::decode_wire(&wire[..wire.len() - 1]).is_err());
        let mut extra = wire.clone();
        extra.push(0);
        assert!(MetricsRegistry::decode_wire(&extra).is_err());
    }
}
