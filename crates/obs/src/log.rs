//! A leveled stderr logger with an env-style `PGRID_LOG` filter.
//!
//! `PGRID_LOG` holds a comma-separated list of directives: a bare level
//! (`error|warn|info|debug|trace`) sets the default, and
//! `target=level` entries override it for any log target starting with
//! that prefix (`PGRID_LOG=warn,cluster=debug`).  Unset, the default is
//! `info` — the level the cluster binary's progress lines log at, so
//! converting its `eprintln!` calls kept their output.
//!
//! Use through the crate-level macros:
//!
//! ```
//! pgrid_obs::info!("cluster::worker", "shard {} wired", 3);
//! pgrid_obs::debug!("net::experiment", "minute {} sampled", 12);
//! ```
//!
//! Formatting only happens when the line is enabled.

use std::io::Write as _;
use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the process cannot recover from on its own.
    Error,
    /// Something off-nominal the run survived.
    Warn,
    /// Coarse progress (the default level).
    Info,
    /// Per-phase detail.
    Debug,
    /// Per-message detail.
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => Some(Level::Info),
        }
    }
}

/// The parsed `PGRID_LOG` filter.
#[derive(Debug)]
struct Filter {
    /// Default max level; `None` silences everything without an override.
    default: Option<Level>,
    /// `(target_prefix, max_level)` overrides, most specific match wins.
    overrides: Vec<(String, Option<Level>)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default: Some(Level::Info),
            overrides: Vec::new(),
        };
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            match directive.split_once('=') {
                Some((target, level)) => filter
                    .overrides
                    .push((target.trim().to_string(), Level::parse(level))),
                None => filter.default = Level::parse(directive),
            }
        }
        // Longest prefix first, so the most specific override wins.
        filter
            .overrides
            .sort_by_key(|(t, _)| std::cmp::Reverse(t.len()));
        filter
    }

    fn max_level(&self, target: &str) -> Option<Level> {
        for (prefix, level) in &self.overrides {
            if target.starts_with(prefix.as_str()) {
                return *level;
            }
        }
        self.default
    }
}

fn filter() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| Filter::parse(&std::env::var("PGRID_LOG").unwrap_or_default()))
}

/// Whether a line at `level` for `target` would be emitted — check before
/// building expensive arguments (the macros do this for you).
pub fn enabled(level: Level, target: &str) -> bool {
    matches!(filter().max_level(target), Some(max) if level <= max)
}

/// Writes one log line to stderr.  Use the crate macros instead of
/// calling this directly.
pub fn write(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let since_epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    let secs = since_epoch.as_secs();
    let (h, m, s) = (secs / 3600 % 24, secs / 60 % 60, secs % 60);
    let millis = since_epoch.subsec_millis();
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let _ = writeln!(
        out,
        "[{h:02}:{m:02}:{s:02}.{millis:03} {:5} {target}] {args}",
        level.as_str()
    );
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error, $target) {
            $crate::log::write($crate::log::Level::Error, $target, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn, $target) {
            $crate::log::write($crate::log::Level::Warn, $target, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info, $target) {
            $crate::log::write($crate::log::Level::Info, $target, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug, $target) {
            $crate::log::write($crate::log::Level::Debug, $target, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Trace, $target) {
            $crate::log::write($crate::log::Level::Trace, $target, ::core::format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parses_default_and_overrides() {
        let f = Filter::parse("warn,cluster=debug,cluster::worker=trace");
        assert_eq!(f.max_level("net::runtime"), Some(Level::Warn));
        assert_eq!(f.max_level("cluster::coordinator"), Some(Level::Debug));
        assert_eq!(f.max_level("cluster::worker"), Some(Level::Trace));
    }

    #[test]
    fn empty_spec_defaults_to_info() {
        let f = Filter::parse("");
        assert_eq!(f.max_level("anything"), Some(Level::Info));
    }

    #[test]
    fn off_silences_a_target() {
        let f = Filter::parse("info,bench=off");
        assert_eq!(f.max_level("bench::queries"), None);
        assert_eq!(f.max_level("net"), Some(Level::Info));
    }

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }
}
