//! # pgrid-obs
//!
//! The observability layer of the P-Grid reproduction.  Zero external
//! dependencies (only `pgrid-core` for the log-scale histogram); every
//! other crate in the workspace can thread it through without pulling in
//! a metrics framework.
//!
//! Four pillars:
//!
//! * [`registry::MetricsRegistry`] — counters, gauges and
//!   `LogHistogram`-backed histograms with label sets, one validated
//!   Prometheus text encoder, and a compact wire codec so sharded worker
//!   processes can stream registry snapshots to the coordinator for a
//!   merged cluster-wide view.
//! * [`trace`] — cheap structured `TraceEvent` records (virtual-time plus
//!   wall-time stamps) on the hot paths, keyed by a per-query trace ID
//!   that the message envelope propagates across process boundaries.
//!   Tracing is **off by default**: a disabled [`trace::Tracer`] records
//!   nothing, builds no strings, and call sites add zero wire bytes.
//! * [`recorder::FlightRecorder`] — a bounded ring of recent coarse
//!   events, dumped as JSONL on panic, query/range timeout, or
//!   coordinator-observed worker failure.
//! * [`scrape`] — a tiny hand-rolled HTTP/1.1 responder serving
//!   `/metrics` (Prometheus text) and `/trace?id=` (JSON) from a shared
//!   [`scrape::ScrapeState`] that the runtime republishes into.
//!
//! Plus a leveled [`log`]ger (`PGRID_LOG=level[,target=level]` filter)
//! replacing the ad-hoc `eprintln!` progress lines of the cluster binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod log;
pub mod recorder;
pub mod registry;
pub mod scrape;
pub mod trace;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::log::Level;
    pub use crate::recorder::FlightRecorder;
    pub use crate::registry::{MetricKind, MetricsRegistry};
    pub use crate::scrape::{ScrapeServer, ScrapeState};
    pub use crate::trace::{TraceEvent, Tracer};
}
