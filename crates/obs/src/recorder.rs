//! The flight recorder: a bounded ring of recent coarse events that can
//! be dumped as JSONL when something goes wrong (panic, query/range
//! timeout, coordinator-observed worker failure), so a misbehaving run
//! leaves a post-mortem artifact instead of a bare exit code.
//!
//! Notes are coarse by design — phase transitions, exchanges per minute,
//! timeouts, connection failures — never per-message hot-path records,
//! so keeping the recorder always on costs nothing measurable.

use crate::json;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One recorded note.
#[derive(Clone, Debug)]
pub struct FlightNote {
    /// Wall-clock stamp (microseconds since the Unix epoch).
    pub wall_micros: u64,
    /// Virtual-time stamp of the runtime that noted it (ms).
    pub virtual_ms: u64,
    /// Event class (`phase`, `query_timeout`, `worker_failure`, ...).
    pub kind: &'static str,
    /// Free-form detail.
    pub detail: String,
}

impl FlightNote {
    fn to_json(&self) -> String {
        format!(
            "{{\"wall_micros\": {}, \"virtual_ms\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
            self.wall_micros,
            self.virtual_ms,
            json::escape(self.kind),
            json::escape(&self.detail)
        )
    }
}

/// A bounded ring of [`FlightNote`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: VecDeque<FlightNote>,
    capacity: usize,
    /// Total notes ever recorded (including evicted ones).
    noted: u64,
}

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 512;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` notes.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            noted: 0,
        }
    }

    /// Records one note, evicting the oldest when the ring is full.
    pub fn note(&mut self, virtual_ms: u64, kind: &'static str, detail: String) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        let wall_micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        self.ring.push_back(FlightNote {
            wall_micros,
            virtual_ms,
            kind,
            detail,
        });
        self.noted += 1;
    }

    /// Notes currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total notes ever recorded (including ones the ring evicted).
    pub fn noted(&self) -> u64 {
        self.noted
    }

    /// Renders the ring as JSONL, oldest note first, preceded by one
    /// header line naming the dump `reason`.
    pub fn to_jsonl(&self, reason: &str) -> String {
        let mut out = format!(
            "{{\"flight_recorder\": \"dump\", \"reason\": \"{}\", \"notes\": {}, \"recorded_total\": {}}}\n",
            json::escape(reason),
            self.ring.len(),
            self.noted
        );
        for note in &self.ring {
            out.push_str(&note.to_json());
            out.push('\n');
        }
        out
    }

    /// Dumps the ring as JSONL to `path` (overwriting a previous dump —
    /// the latest post-mortem wins).
    pub fn dump_to(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl(reason).as_bytes())?;
        file.flush()
    }
}

/// A recorder shareable across threads (the panic hook needs one).
pub type SharedRecorder = Arc<Mutex<FlightRecorder>>;

/// Wraps the recorder for sharing with [`install_panic_dump`].
pub fn shared(capacity: usize) -> SharedRecorder {
    Arc::new(Mutex::new(FlightRecorder::new(capacity)))
}

/// Installs a panic hook that dumps `recorder` to `path` before the
/// previous hook runs, so a crashed process still leaves its ring behind.
pub fn install_panic_dump(recorder: SharedRecorder, path: std::path::PathBuf) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Ok(ring) = recorder.lock() {
            let _ = ring.dump_to(&path, &format!("panic: {info}"));
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_most_recent() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10u64 {
            r.note(i, "tick", format!("i={i}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.noted(), 10);
        let jsonl = r.to_jsonl("test");
        assert!(jsonl.contains("\"detail\": \"i=9\""));
        assert!(!jsonl.contains("\"detail\": \"i=6\""));
    }

    #[test]
    fn dump_writes_header_plus_one_line_per_note() {
        let mut r = FlightRecorder::new(8);
        r.note(5, "query_timeout", "query 3 expired".to_string());
        let dir = std::env::temp_dir().join("pgrid_obs_recorder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        r.dump_to(&path, "forced timeout").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"reason\": \"forced timeout\""));
        assert!(lines[1].contains("\"kind\": \"query_timeout\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
