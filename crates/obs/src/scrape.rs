//! The live scrape endpoint: a tiny hand-rolled HTTP/1.1 responder (no
//! external dependencies, `std::net` only) serving the latest published
//! metrics at `/metrics` and reassembled traces at `/trace?id=N`.
//!
//! The server thread never touches live runtime state: producers render
//! their [`crate::registry::MetricsRegistry`] whenever convenient (each
//! phase barrier, each timeline minute) and publish the text into the
//! shared [`ScrapeState`]; the responder just copies the latest snapshot
//! out.  That keeps the scrape path trivially lock-ordered and the
//! runtime hot paths free of synchronisation.

use crate::trace::{assemble, TraceEvent};
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the responder serves: the latest rendered metrics snapshot and
/// the trace events published so far.
#[derive(Debug, Default)]
pub struct ScrapeState {
    metrics: Mutex<String>,
    traces: Mutex<BTreeMap<u64, Vec<TraceEvent>>>,
}

impl ScrapeState {
    /// An empty state.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Replaces the published `/metrics` body.
    pub fn publish_metrics(&self, text: String) {
        *self.metrics.lock().unwrap() = text;
    }

    /// The currently published metrics text.
    pub fn metrics(&self) -> String {
        self.metrics.lock().unwrap().clone()
    }

    /// Adds trace events to the published set (grouped by trace ID).
    pub fn publish_trace_events(&self, events: &[TraceEvent]) {
        let mut traces = self.traces.lock().unwrap();
        for (id, mut chain) in assemble(events) {
            traces.entry(id).or_default().append(&mut chain);
        }
    }

    /// The reassembled chain of one trace as JSONL (`None` if unknown).
    pub fn trace_jsonl(&self, id: u64) -> Option<String> {
        let traces = self.traces.lock().unwrap();
        let chain = traces.get(&id)?;
        let mut ordered = chain.clone();
        ordered.sort_by_key(|e| (e.virtual_ms, e.wall_micros));
        Some(
            ordered
                .iter()
                .map(|e| e.to_json() + "\n")
                .collect::<String>(),
        )
    }

    /// All published trace IDs.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.traces.lock().unwrap().keys().copied().collect()
    }
}

/// A running scrape responder; shuts down on [`ScrapeServer::shutdown`]
/// or drop.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ScrapeServer {
    /// Binds `addr` (port 0 picks a free port) and starts the responder
    /// thread serving `state`.
    pub fn serve(addr: SocketAddr, state: Arc<ScrapeState>) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pgrid-scrape".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let _ = respond(stream, &state);
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the responder thread and waits for it.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop with one throwaway connection.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Reads one request head (capped) and writes the matching response.
fn respond(mut stream: TcpStream, state: &ScrapeState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 4096 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let target = request
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("GET"), Some(path)) => Some(path.to_string()),
                _ => None,
            }
        })
        .unwrap_or_default();

    let (status, content_type, body) = route(&target, state);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(target: &str, state: &ScrapeState) -> (&'static str, &'static str, String) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            state.metrics(),
        ),
        "/trace" => {
            let id = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("id="))
                .and_then(|v| v.parse::<u64>().ok());
            match id {
                Some(id) => match state.trace_jsonl(id) {
                    Some(jsonl) => ("200 OK", "application/json", jsonl),
                    None => (
                        "404 Not Found",
                        "text/plain; charset=utf-8",
                        format!("unknown trace id {id}\n"),
                    ),
                },
                None => {
                    let ids = state
                        .trace_ids()
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(", ");
                    (
                        "200 OK",
                        "application/json",
                        format!("{{\"trace_ids\": [{ids}]}}\n"),
                    )
                }
            }
        }
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    }
}

/// Issues one blocking `GET path` against `addr` and returns the body —
/// the client half the cluster e2e test and the coordinator's worker
/// probes use (not a general HTTP client).
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: pgrid\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::other(format!(
            "scrape failed: {}",
            head.lines().next().unwrap_or("")
        ))),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "malformed HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_trace_and_404() {
        let state = ScrapeState::new();
        state.publish_metrics("pgrid_up 1\n".to_string());
        state.publish_trace_events(&[TraceEvent {
            trace_id: 7,
            kind: "query_issued",
            peer: 1,
            virtual_ms: 10,
            wall_micros: 20,
            detail: "key=5".to_string(),
        }]);
        let server = ScrapeServer::serve("127.0.0.1:0".parse().unwrap(), Arc::clone(&state))
            .expect("bind scrape server");
        let addr = server.addr();

        let metrics = http_get(addr, "/metrics").unwrap();
        assert_eq!(metrics, "pgrid_up 1\n");

        let trace = http_get(addr, "/trace?id=7").unwrap();
        assert!(trace.contains("\"kind\": \"query_issued\""));

        let ids = http_get(addr, "/trace").unwrap();
        assert!(ids.contains("[7]"));

        assert!(http_get(addr, "/trace?id=99").is_err());
        assert!(http_get(addr, "/nope").is_err());
        assert_eq!(http_get(addr, "/healthz").unwrap(), "ok\n");

        server.shutdown();
    }

    #[test]
    fn publishing_updates_the_served_snapshot() {
        let state = ScrapeState::new();
        let server =
            ScrapeServer::serve("127.0.0.1:0".parse().unwrap(), Arc::clone(&state)).unwrap();
        state.publish_metrics("a 1\n".to_string());
        assert_eq!(http_get(server.addr(), "/metrics").unwrap(), "a 1\n");
        state.publish_metrics("a 2\n".to_string());
        assert_eq!(http_get(server.addr(), "/metrics").unwrap(), "a 2\n");
        server.shutdown();
    }
}
