//! Structured tracing: cheap per-event records keyed by a trace ID that
//! the message envelope carries across peers and the cluster proto
//! carries across processes, so one lookup's full hop chain can be
//! reassembled from the merged event set.
//!
//! Tracing is **off by default**.  A disabled [`Tracer`] allocates no
//! buffer, records nothing, and hands out trace ID `0` — the sentinel the
//! message codec maps to "no envelope", so a disabled run produces
//! byte-identical wire streams.  Nothing here touches an RNG, so pinned
//! seeds stay bit-identical either way.

use crate::json;

/// The sentinel "not traced" ID (never allocated to a real trace).
pub const NO_TRACE: u64 = 0;

/// Reserved trace ID for *ambient* events: hot-path records that belong
/// to the runtime as a whole rather than to one lookup — exchange
/// decisions, sampled frame send/receive events.  Never allocated by
/// [`Tracer::new_trace`] and never put on the wire.
pub const AMBIENT_TRACE: u64 = u64::MAX;

/// One structured event on a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace this event belongs to (never [`NO_TRACE`]).
    pub trace_id: u64,
    /// What happened (`query_issued`, `query_forwarded`, ...).
    pub kind: &'static str,
    /// The peer the event happened on.
    pub peer: u64,
    /// Virtual-time stamp (runtime clock, ms).
    pub virtual_ms: u64,
    /// Wall-clock stamp (microseconds since the Unix epoch).
    pub wall_micros: u64,
    /// Free-form detail (`path=0110 hop=2`, ...).
    pub detail: String,
}

impl TraceEvent {
    /// One-line JSON rendering (the `/trace` endpoint and the merged
    /// trace file are JSONL of exactly these).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"trace_id\": {}, \"kind\": \"{}\", \"peer\": {}, \"virtual_ms\": {}, \
             \"wall_micros\": {}, \"detail\": \"{}\"}}",
            self.trace_id,
            json::escape(self.kind),
            self.peer,
            self.virtual_ms,
            self.wall_micros,
            json::escape(&self.detail)
        )
    }
}

/// A per-runtime trace sink with a bounded buffer.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Events discarded because the buffer was full (between drains).
    dropped: u64,
    /// Next trace ID; the high bits carry a per-process base so IDs from
    /// different cluster workers never collide.
    next_id: u64,
}

/// Default event-buffer capacity of an enabled tracer.
pub const DEFAULT_CAPACITY: usize = 65_536;

impl Tracer {
    /// The no-op tracer every runtime starts with.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            capacity: 0,
            events: Vec::new(),
            dropped: 0,
            next_id: 1,
        }
    }

    /// An enabled tracer buffering up to `capacity` events between drains.
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            capacity: capacity.max(1),
            events: Vec::new(),
            dropped: 0,
            next_id: 1,
        }
    }

    /// An enabled tracer with the default capacity.
    pub fn enabled() -> Self {
        Self::enabled_with_capacity(DEFAULT_CAPACITY)
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Gives this tracer a disjoint ID space (cluster worker `shard`
    /// passes its shard index so merged trace IDs never collide).
    pub fn set_id_base(&mut self, base: u64) {
        self.next_id = (base << 40) | 1;
    }

    /// Allocates a fresh trace ID, or [`NO_TRACE`] when disabled — the
    /// codec treats `0` as "don't wrap", so disabled runs stay
    /// byte-identical on the wire.
    pub fn new_trace(&mut self) -> u64 {
        if !self.enabled {
            return NO_TRACE;
        }
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Records an event on `trace_id`.  A no-op when the tracer is
    /// disabled or the ID is [`NO_TRACE`]; `detail` is only invoked when
    /// the event is actually recorded, so hot paths pay nothing when
    /// tracing is off.
    pub fn record(
        &mut self,
        trace_id: u64,
        kind: &'static str,
        peer: u64,
        virtual_ms: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled || trace_id == NO_TRACE {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let wall_micros = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        self.events.push(TraceEvent {
            trace_id,
            kind,
            peer,
            virtual_ms,
            wall_micros,
            detail: detail(),
        });
    }

    /// The buffered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Takes the buffered events (cluster workers drain at each barrier
    /// and ship the batch to the coordinator).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events discarded since the last drain because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Returns a `'static` copy of an event-kind string decoded off the wire.
///
/// Event kinds are `&'static str` so recording stays allocation-free, but
/// the cluster control plane ships events between processes as plain
/// strings.  Decoding maps each kind back onto the runtime's own literal
/// when it is a known one, and otherwise interns the string once (a
/// bounded leak: one allocation per *distinct* unknown kind, of which a
/// well-formed peer produces none).
pub fn intern_kind(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "query_issued",
        "query_hop",
        "query_replica_forward",
        "query_answered",
        "query_dead_end",
        "query_resolved",
        "query_timeout",
        "range_issued",
        "range_hop",
        "range_answered",
        "range_slice",
        "range_detour",
        "range_retry",
        "range_incomplete",
        "exchange_decision",
        "frame_sent",
        "frame_received",
    ];
    if let Some(kind) = KNOWN.iter().find(|k| **k == name) {
        return kind;
    }
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    static EXTRA: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut extra = EXTRA.get_or_init(Default::default).lock().unwrap();
    if let Some(kind) = extra.get(name) {
        return kind;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    extra.insert(name.to_string(), leaked);
    leaked
}

/// Groups events by trace ID and orders each group by virtual time then
/// wall time — the reassembly step the coordinator (and the `/trace`
/// endpoint) applies to a merged event set.
pub fn assemble(events: &[TraceEvent]) -> std::collections::BTreeMap<u64, Vec<TraceEvent>> {
    let mut chains: std::collections::BTreeMap<u64, Vec<TraceEvent>> = Default::default();
    for event in events {
        chains
            .entry(event.trace_id)
            .or_default()
            .push(event.clone());
    }
    for chain in chains.values_mut() {
        chain.sort_by_key(|e| (e.virtual_ms, e.wall_micros));
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_allocates_no_ids() {
        let mut t = Tracer::disabled();
        assert_eq!(t.new_trace(), NO_TRACE);
        t.record(7, "query_issued", 1, 10, || unreachable!("must not format"));
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_tracer_allocates_distinct_ids_and_buffers_events() {
        let mut t = Tracer::enabled_with_capacity(4);
        let a = t.new_trace();
        let b = t.new_trace();
        assert_ne!(a, NO_TRACE);
        assert_ne!(a, b);
        t.record(a, "query_issued", 3, 100, || "key=42".to_string());
        t.record(b, "query_issued", 4, 101, String::new);
        assert_eq!(t.events().len(), 2);
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert!(t.events().is_empty());
    }

    #[test]
    fn buffer_is_bounded_and_counts_drops() {
        let mut t = Tracer::enabled_with_capacity(2);
        let id = t.new_trace();
        for _ in 0..5 {
            t.record(id, "hop", 0, 1, String::new);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn id_bases_give_disjoint_spaces() {
        let mut a = Tracer::enabled();
        let mut b = Tracer::enabled();
        a.set_id_base(1);
        b.set_id_base(2);
        assert_ne!(a.new_trace(), b.new_trace());
    }

    #[test]
    fn assemble_groups_and_orders_by_virtual_time() {
        let mk = |trace_id, virtual_ms, peer| TraceEvent {
            trace_id,
            kind: "hop",
            peer,
            virtual_ms,
            wall_micros: 0,
            detail: String::new(),
        };
        let chains = assemble(&[mk(2, 30, 1), mk(1, 20, 5), mk(2, 10, 0)]);
        assert_eq!(chains.len(), 2);
        assert_eq!(
            chains[&2].iter().map(|e| e.peer).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn interning_reuses_known_kinds_and_dedups_unknown_ones() {
        assert_eq!(intern_kind("query_issued"), "query_issued");
        let a = intern_kind("made_up_kind_for_tests");
        let b = intern_kind("made_up_kind_for_tests");
        assert!(std::ptr::eq(a, b), "unknown kinds must intern to one copy");
    }

    #[test]
    fn event_json_is_escaped() {
        let e = TraceEvent {
            trace_id: 9,
            kind: "query_issued",
            peer: 2,
            virtual_ms: 5,
            wall_micros: 6,
            detail: "path=\"01\"".to_string(),
        };
        let json = e.to_json();
        assert!(json.contains("\"trace_id\": 9"));
        assert!(json.contains("path=\\\"01\\\""));
    }
}
