//! Exposition-format coverage: a golden-file check of the registry
//! encoder (byte-for-byte, so accidental format drift fails loudly) and
//! a lint pass asserting every emitted line is spec-valid.

use pgrid_core::histogram::LogHistogram;
use pgrid_obs::registry::{valid_label_name, valid_metric_name, MetricsRegistry};
use std::collections::HashSet;

fn golden_registry() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.counter(
        "pgrid_frames_sent_total",
        "Frames handed to the transport for delivery.",
        &[],
        1234,
    );
    reg.counter(
        "pgrid_peer_frames_sent_total",
        "Frames sent to this peer.",
        &[("peer", "3")],
        40,
    );
    reg.counter(
        "pgrid_peer_frames_sent_total",
        "Frames sent to this peer.",
        &[("peer", "11")],
        7,
    );
    reg.gauge(
        "pgrid_balance_deviation",
        "Relative deviation of the storage balance (paper Fig. 6).",
        &[],
        0.636,
    );
    reg.gauge(
        "pgrid_phase",
        "Current phase with an escaped label: quote=\" backslash=\\ done.",
        &[("name", "con\"struct\\t\nion")],
        3.0,
    );
    let mut latency = LogHistogram::new();
    for v in [1u64, 1, 3, 9, 130, 130, 2000] {
        latency.record(v);
    }
    reg.histogram(
        "pgrid_query_latency_ms",
        "Per-query latency in virtual milliseconds.",
        &[("index", "0")],
        &latency,
    );
    reg
}

/// The output the encoder must keep producing; regenerate deliberately
/// (never blindly) with `cargo test -p pgrid-obs --test exposition -- --nocapture`
/// after a reviewed format change.
const GOLDEN: &str = include_str!("golden_metrics.txt");

#[test]
fn encoder_matches_the_golden_file() {
    let encoded = golden_registry().encode();
    if encoded != GOLDEN {
        println!("--- encoder output ---\n{encoded}--- end ---");
    }
    assert_eq!(
        encoded, GOLDEN,
        "registry encoder drifted from tests/golden_metrics.txt"
    );
}

/// Splits a series line into (metric name, label pairs, value), failing
/// the test on any syntax the exposition format does not allow.
fn parse_series_line(line: &str) -> (String, Vec<(String, String)>, String) {
    let (series, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("series line without value: {line:?}"));
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let inner = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set: {line:?}"));
            let mut labels = Vec::new();
            let mut remaining = inner;
            while !remaining.is_empty() {
                let (key, rest) = remaining
                    .split_once("=\"")
                    .unwrap_or_else(|| panic!("malformed label in {line:?}"));
                // Find the closing quote, honouring backslash escapes.
                let mut end = None;
                let bytes = rest.as_bytes();
                let mut at = 0;
                while at < bytes.len() {
                    match bytes[at] {
                        b'\\' => at += 2,
                        b'"' => {
                            end = Some(at);
                            break;
                        }
                        _ => at += 1,
                    }
                }
                let end = end.unwrap_or_else(|| panic!("unterminated label value in {line:?}"));
                labels.push((key.to_string(), rest[..end].to_string()));
                remaining = rest[end + 1..].trim_start_matches(',');
            }
            (name.to_string(), labels)
        }
    };
    (name, labels, value.to_string())
}

/// Lints one exposition body: names and labels valid, `# TYPE` declared
/// once before any series of its family, no duplicate series, label
/// values escaped (no raw quote/newline can appear inside a value by
/// construction of the parser above), values numeric.
pub fn lint_exposition(text: &str) {
    let mut typed: HashSet<String> = HashSet::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("# TYPE without name");
            let kind = parts.next().expect("# TYPE without kind");
            assert!(valid_metric_name(name), "invalid family name {name:?}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind:?}"
            );
            assert!(typed.insert(name.to_string()), "duplicate # TYPE {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("# HELP without name");
            assert!(helped.insert(name.to_string()), "duplicate # HELP {name}");
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let (name, labels, value) = parse_series_line(line);
        assert!(valid_metric_name(&name), "invalid metric name {name:?}");
        let family = typed.iter().any(|t| {
            name == *t
                || (name
                    .strip_prefix(t.as_str())
                    .is_some_and(|suffix| ["_bucket", "_sum", "_count"].contains(&suffix)))
        });
        assert!(family, "series {name} has no preceding # TYPE");
        let mut label_names = HashSet::new();
        for (key, _) in &labels {
            assert!(
                valid_label_name(key) || key == "le",
                "invalid label {key:?}"
            );
            assert!(
                label_names.insert(key.clone()),
                "duplicate label {key:?} on {name}"
            );
        }
        assert!(
            seen_series.insert(line[..line.rfind(' ').unwrap()].to_string()),
            "duplicate series {line:?}"
        );
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "non-numeric value {value:?} on {name}"
        );
    }
}

#[test]
fn golden_output_passes_the_lint() {
    lint_exposition(&golden_registry().encode());
}

#[test]
fn merged_multi_worker_output_passes_the_lint() {
    let worker = golden_registry();
    let mut merged = MetricsRegistry::new();
    for shard in 0..3 {
        merged.absorb(&worker, Some(("worker", &shard.to_string())));
    }
    let text = merged.encode();
    lint_exposition(&text);
    assert!(text.contains("worker=\"2\""));
}

#[test]
fn lint_catches_duplicate_series() {
    let result = std::panic::catch_unwind(|| {
        lint_exposition("# TYPE pgrid_x gauge\npgrid_x 1\npgrid_x 2\n");
    });
    assert!(result.is_err(), "duplicate series must fail the lint");
}
