//! Criterion benchmark: whole-overlay construction, parallel versus
//! sequential, across network sizes (the Section 4.3 complexity experiment
//! as a wall-clock measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgrid_sim::config::SimConfig;
use pgrid_sim::construction::construct;
use pgrid_sim::sequential::construct_sequentially;
use pgrid_workload::distributions::Distribution;

fn config(n: usize) -> SimConfig {
    SimConfig {
        n_peers: n,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Pareto { shape: 1.0 },
        seed: 1,
        ..SimConfig::default()
    }
}

fn bench_parallel_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_parallel");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| construct(&config(n)));
        });
    }
    group.finish();
}

fn bench_sequential_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_sequential");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| construct_sequentially(&config(n)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_construction,
    bench_sequential_construction
);
criterion_main!(benches);
