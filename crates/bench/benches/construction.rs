//! Criterion benchmarks: whole-overlay construction.
//!
//! * `construction_whole` — the paper's parallel construction across
//!   network sizes (single worker thread, so size scaling is isolated from
//!   thread scaling).
//! * `construction_sequential` — the Section 4.3 sequential-join baseline.
//! * `construction_parallel` — the conflict-free batch scheduler at
//!   n_peers = 4096, one worker thread versus one per available CPU.  The
//!   constructor is bit-identical across thread counts, so the two
//!   measurements time the same work; on a 4+ core machine the
//!   all-cores run is expected to finish ≥ 2× faster.  The
//!   `bench_construction` binary runs the full scaling matrix and emits a
//!   `BENCH_construction.json` snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgrid_sim::config::SimConfig;
use pgrid_sim::construction::construct;
use pgrid_sim::sequential::construct_sequentially;
use pgrid_workload::distributions::Distribution;

fn config(n: usize, n_threads: usize) -> SimConfig {
    SimConfig {
        n_peers: n,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Pareto { shape: 1.0 },
        seed: 1,
        n_threads,
        ..SimConfig::default()
    }
}

fn bench_whole_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_whole");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| construct(&config(n, 1)));
        });
    }
    group.finish();
}

fn bench_sequential_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_sequential");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| construct_sequentially(&config(n, 1)));
        });
    }
    group.finish();
}

fn bench_parallel_construction(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("construction_parallel");
    group.sample_size(3);
    for &threads in &[1usize, max_threads] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| construct(&config(4096, threads)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_whole_construction,
    bench_sequential_construction,
    bench_parallel_construction
);
criterion_main!(benches);
