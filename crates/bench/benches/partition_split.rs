//! Criterion micro-benchmark: cost of one decentralized bisection for the
//! different partitioning strategies (the ablation behind Figures 4/5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgrid_partition::discrete::{simulate_split, Knowledge, SplitConfig, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_split_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_split");
    group.sample_size(20);
    for strategy in [
        Strategy::Aep,
        Strategy::AepCorrected,
        Strategy::Autonomous,
        Strategy::Heuristic,
    ] {
        group.bench_with_input(
            BenchmarkId::new("strategy", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let config = SplitConfig {
                    n_peers: 1000,
                    p: 0.4,
                    knowledge: Knowledge::Sampled(10),
                    strategy,
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = StdRng::seed_from_u64(seed);
                    simulate_split(&config, &mut rng)
                });
            },
        );
    }
    group.finish();
}

fn bench_split_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_split_skew");
    group.sample_size(20);
    for &p in &[0.5, 0.3, 0.1] {
        group.bench_with_input(BenchmarkId::new("p", format!("{p}")), &p, |b, &p| {
            let config = SplitConfig {
                n_peers: 1000,
                p,
                knowledge: Knowledge::Exact,
                strategy: Strategy::Aep,
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                simulate_split(&config, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split_strategies, bench_split_skew);
criterion_main!(benches);
