//! Criterion benchmark: lookup and range-query routing cost on a constructed
//! overlay (the operational-phase performance behind the Section 5.2 search
//! statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgrid_core::key::Key;
use pgrid_core::routing::PeerId;
use pgrid_core::search::{lookup, range_query};
use pgrid_sim::config::SimConfig;
use pgrid_sim::construction::{construct, ConstructedOverlay};
use pgrid_workload::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn overlay(n: usize) -> ConstructedOverlay {
    construct(&SimConfig {
        n_peers: n,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 2,
        ..SimConfig::default()
    })
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    for &n in &[128usize, 256, 512] {
        let net = overlay(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let key = net.original_entries[rng.gen_range(0..net.original_entries.len())].key;
                lookup(&net, PeerId(rng.gen_range(0..n as u64)), key, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_range_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query");
    group.sample_size(30);
    let net = overlay(256);
    for &width in &[0.01f64, 0.05, 0.2] {
        group.bench_with_input(
            BenchmarkId::new("width", format!("{width}")),
            &width,
            |b, &width| {
                let mut rng = StdRng::seed_from_u64(4);
                b.iter(|| {
                    let start: f64 = rng.gen_range(0.0..1.0 - width);
                    range_query(
                        &net,
                        PeerId(rng.gen_range(0..256u64)),
                        Key::from_fraction(start),
                        Key::from_fraction(start + width),
                        &mut rng,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_range_query);
criterion_main!(benches);
