//! Criterion benchmark: transport throughput in messages per second —
//! loopback vs TCP, with and without per-tick batching.
//!
//! Each iteration pushes a fixed batch of realistic `Exchange` messages
//! from one peer to another and drains the receiving side.  "batched"
//! packs all messages of an iteration into a single frame (what the
//! deployment runtime does per tick and destination); "unbatched" sends
//! one frame per message.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::Path;
use pgrid_core::routing::PeerId;
use pgrid_net::message::Message;
use pgrid_transport::frame::encode_frame;
use pgrid_transport::loopback::LoopbackTransport;
use pgrid_transport::tcp::TcpTransport;
use pgrid_transport::Transport;

/// Messages per iteration (one construction tick's worth of exchanges for
/// a mid-sized deployment).
const BATCH: usize = 64;

fn payloads() -> Vec<Bytes> {
    (0..BATCH)
        .map(|i| {
            let entries: Vec<DataEntry> = (0..10)
                .map(|j| {
                    DataEntry::new(
                        Key::from_fraction((i * 10 + j) as f64 / (BATCH * 10) as f64),
                        DataId((i * 10 + j) as u64),
                    )
                })
                .collect();
            Message::Exchange {
                from: PeerId(0),
                path: Path::parse("0101"),
                entries,
            }
            .encode()
        })
        .collect()
}

/// Sends the payloads as `frames` pre-encoded frames and drains them back
/// out of the transport, returning the number of delivered frames.
fn pump<T: Transport>(transport: &mut T, to: PeerId, frames: &[Bytes]) -> usize {
    for frame in frames {
        transport
            .send(0, to, frame.clone())
            .expect("send must succeed");
    }
    let mut delivered = 0;
    while delivered < frames.len() {
        delivered += transport.poll(u64::MAX).len();
        if delivered < frames.len() && transport.is_realtime() {
            std::thread::yield_now();
        }
    }
    delivered
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_msgs");
    group.sample_size(30);

    let single = payloads();
    let batched_frames = vec![encode_frame(&single)];
    let unbatched_frames: Vec<Bytes> = single
        .iter()
        .map(|p| encode_frame(std::slice::from_ref(p)))
        .collect();

    for (mode, frames) in [
        ("batched", &batched_frames),
        ("unbatched", &unbatched_frames),
    ] {
        group.bench_with_input(BenchmarkId::new("loopback", mode), frames, |b, frames| {
            let mut transport = LoopbackTransport::instant();
            let to = PeerId(1);
            transport.register(to).expect("register");
            b.iter(|| pump(&mut transport, to, frames));
        });
        group.bench_with_input(BenchmarkId::new("tcp", mode), frames, |b, frames| {
            let mut transport = TcpTransport::new();
            let to = PeerId(1);
            transport.register(to).expect("register");
            // Warm the connection up front so the bench measures the
            // steady state, not the handshake.
            pump(&mut transport, to, &frames[..1]);
            b.iter(|| pump(&mut transport, to, frames));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
