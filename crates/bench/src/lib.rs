//! # pgrid-bench
//!
//! Benchmark and figure-regeneration harness of the P-Grid reproduction.
//!
//! * The Criterion benches under `benches/` measure the primitive costs
//!   (single bisection, whole construction, lookups) and double as the
//!   scaling/ablation experiments of `DESIGN.md`.
//! * The `figures` binary regenerates every table and figure of the paper's
//!   evaluation section as plain-text series (see `EXPERIMENTS.md`).
//!
//! This library only contains small formatting helpers shared between the
//! two.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Formats a row of floating-point cells with a fixed label column, used by
/// the `figures` binary for its aligned text tables.
pub fn format_row(label: &str, cells: &[f64]) -> String {
    let mut out = format!("{label:<14}");
    for cell in cells {
        out.push_str(&format!(" {cell:>10.3}"));
    }
    out
}

/// Formats a header row matching [`format_row`].
pub fn format_header(label: &str, columns: &[String]) -> String {
    let mut out = format!("{label:<14}");
    for column in columns {
        out.push_str(&format!(" {column:>10}"));
    }
    out
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation of a slice (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_aligned() {
        let header = format_header("p", &["a".to_string(), "b".to_string()]);
        let row = format_row("0.5", &[1.0, 2.0]);
        assert_eq!(header.len(), row.len());
    }

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
