//! Durability runner: append throughput of the log-structured store,
//! crash-recovery replay speed, compaction reclaim, and the cost of a
//! copy-on-write store snapshot against a deep clone — emitted as an
//! aligned text table and a `BENCH_durable.json` snapshot for CI archival.
//!
//! ```text
//! cargo run --release -p pgrid-bench --bin bench_durable
//! cargo run --release -p pgrid-bench --bin bench_durable -- --quick
//! cargo run --release -p pgrid-bench --bin bench_durable -- \
//!     --records 40000 --out BENCH_durable.json
//! ```
//!
//! The append phase drives [`DurableStore::observe`] the way the cluster
//! worker does — a rolling set of peers mutating their `KeyStore`s, one
//! delta record per changed peer, one fsync per batch (a pacing slice).
//! The replay phase reopens the directory cold and times the rebuild of
//! the mirror.  The snapshot phase pins the PR's copy-on-write claim:
//! cloning a `KeyStore` must be O(1) pointer work, orders of magnitude
//! cheaper than duplicating the entry set.

use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::Path;
use pgrid_core::store::KeyStore;
use pgrid_durable::{DurableStore, LogOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Records appended between two fsyncs — the shape of one pacing slice.
const SYNC_BATCH: u64 = 64;

/// Hosted peers whose stores the append phase mutates round-robin.
const PEERS: u32 = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let option = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|at| args.get(at + 1))
            .cloned()
    };
    let records: u64 = option("--records")
        .map(|v| v.parse().expect("--records must be an integer"))
        .unwrap_or(if quick { 4_000 } else { 40_000 });
    let snapshot_entries: usize = option("--snapshot-entries")
        .map(|v| v.parse().expect("--snapshot-entries must be an integer"))
        .unwrap_or(if quick { 20_000 } else { 200_000 });
    let out = option("--out").unwrap_or_else(|| "BENCH_durable.json".to_string());

    let dir = std::env::temp_dir().join(format!("pgrid-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- append ---------------------------------------------------------
    let mut store = DurableStore::open(&dir, LogOptions::default()).expect("open log");
    let mut rng = StdRng::seed_from_u64(0xD0C5);
    let mut stores: Vec<(KeyStore, Path)> = (0..PEERS)
        .map(|p| {
            (
                KeyStore::new(),
                Path::parse(if p % 2 == 0 { "0" } else { "1" }),
            )
        })
        .collect();
    let start = Instant::now();
    let mut appended = 0u64;
    while appended < records {
        for _ in 0..SYNC_BATCH.min(records - appended) {
            let peer = rng.gen_range(0..PEERS);
            let (ks, path) = &mut stores[peer as usize];
            for _ in 0..4 {
                ks.insert(DataEntry {
                    key: Key(rng.gen()),
                    id: DataId(rng.gen()),
                });
            }
            let routing = [(0u8, u64::from(peer) ^ 1, *path)];
            if store
                .observe(
                    0,
                    peer,
                    *path,
                    ks,
                    &routing,
                    &[u64::from(peer) + PEERS as u64],
                )
                .expect("observe")
            {
                appended += 1;
            }
        }
        store.sync().expect("fsync");
    }
    let append_wall = start.elapsed().as_secs_f64();
    let stats = store.stats().clone();
    let append_bytes = stats.appended_bytes;
    let records_per_s = appended as f64 / append_wall;
    let mb_per_s = append_bytes as f64 / (1024.0 * 1024.0) / append_wall;
    let fsync_p50 = stats.fsync_micros.quantile(0.50).unwrap_or(0);
    let fsync_p99 = stats.fsync_micros.quantile(0.99).unwrap_or(0);
    let live_entries: usize = stores.iter().map(|(ks, _)| ks.len()).sum();
    println!(
        "append : {appended} records ({append_bytes} B) in {append_wall:.3}s — \
         {records_per_s:.0} rec/s, {mb_per_s:.1} MiB/s, fsync p50 {fsync_p50}µs p99 {fsync_p99}µs \
         ({} syncs, {} segments)",
        stats.syncs,
        store.segment_count()
    );

    // --- replay ---------------------------------------------------------
    drop(store);
    let start = Instant::now();
    let reopened = DurableStore::open(&dir, LogOptions::default()).expect("reopen log");
    let replay_wall = start.elapsed().as_secs_f64();
    let replayed = reopened.stats().replayed_records;
    let mirrored: usize = reopened
        .images()
        .map(|(_, image)| image.entries.len())
        .sum();
    assert_eq!(replayed, appended, "replay lost records");
    assert_eq!(
        mirrored, live_entries,
        "the rebuilt mirror does not match the live stores"
    );
    let ms_per_10k = replay_wall * 1_000.0 / (replayed as f64 / 10_000.0);
    println!(
        "replay : {replayed} records -> {mirrored} entries in {replay_wall:.3}s — \
         {ms_per_10k:.1} ms per 10k records"
    );

    // --- compaction ------------------------------------------------------
    let mut compacting = reopened;
    let before_bytes = compacting.total_bytes();
    let start = Instant::now();
    compacting.compact().expect("compact");
    let compact_wall = start.elapsed().as_secs_f64();
    let reclaimed = before_bytes.saturating_sub(compacting.total_bytes());
    assert!(
        compacting.total_bytes() < before_bytes,
        "compaction reclaimed nothing from a delta-heavy log"
    );
    println!(
        "compact: {before_bytes} -> {} B ({reclaimed} reclaimed) in {compact_wall:.3}s",
        compacting.total_bytes()
    );
    drop(compacting);

    // --- snapshot: copy-on-write vs deep clone ---------------------------
    let big = KeyStore::from_entries((0..snapshot_entries as u64).map(|i| DataEntry {
        key: Key(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        id: DataId(i),
    }));
    let cow_iters = 100_000u32;
    let start = Instant::now();
    let mut last = big.clone();
    for _ in 1..cow_iters {
        last = big.clone();
    }
    let cow_ns = start.elapsed().as_nanos() as f64 / f64::from(cow_iters);
    assert!(
        last.shares_storage_with(&big),
        "a COW snapshot must share storage until a write"
    );
    let deep_iters = if quick { 20u32 } else { 100 };
    let start = Instant::now();
    let mut deep = big.deep_clone();
    for _ in 1..deep_iters {
        deep = big.deep_clone();
    }
    let deep_ns = start.elapsed().as_nanos() as f64 / f64::from(deep_iters);
    assert!(
        !deep.shares_storage_with(&big),
        "a deep clone must own its storage"
    );
    let speedup = deep_ns / cow_ns;
    println!(
        "snapshot: {snapshot_entries} entries — COW {cow_ns:.0} ns vs deep clone {deep_ns:.0} ns \
         ({speedup:.0}x)"
    );
    // The COW claim the scenario executor's lazy snapshots rely on: a
    // snapshot is pointer work, not proportional to the store.
    assert!(
        speedup >= 10.0,
        "COW snapshot is not meaningfully cheaper than a deep clone: {speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"durable\",\n  \"quick\": {quick},\n  \"append\": {{\"records\": {appended}, \
         \"bytes\": {append_bytes}, \"wall_s\": {append_wall:.3}, \"records_per_s\": {records_per_s:.0}, \
         \"mib_per_s\": {mb_per_s:.2}, \"fsync_p50_us\": {fsync_p50}, \"fsync_p99_us\": {fsync_p99}, \
         \"syncs\": {}}},\n  \"replay\": {{\"records\": {replayed}, \"entries\": {mirrored}, \
         \"wall_s\": {replay_wall:.4}, \"ms_per_10k_records\": {ms_per_10k:.2}}},\n  \
         \"compact\": {{\"before_bytes\": {before_bytes}, \"reclaimed_bytes\": {reclaimed}, \
         \"wall_s\": {compact_wall:.4}}},\n  \"snapshot\": {{\"entries\": {snapshot_entries}, \
         \"cow_ns\": {cow_ns:.0}, \"deep_clone_ns\": {deep_ns:.0}, \"speedup\": {speedup:.1}}}\n}}\n",
        stats.syncs
    );
    std::fs::write(&out, &json).expect("snapshot file must be writable");
    println!("snapshot written to {out}");
    let _ = std::fs::remove_dir_all(&dir);
}
