//! Query data-plane runner: sustained lookup throughput over the message
//! runtime on loopback, with latency percentiles from the log-scale
//! histogram, a route-cache before/after comparison, and a distribution
//! shift folded in (p99 while the overlay re-balances live), emitted both
//! as an aligned text table and as a `BENCH_queries.json` snapshot for CI
//! archival.
//!
//! ```text
//! cargo run --release -p pgrid-bench --bin bench_queries
//! cargo run --release -p pgrid-bench --bin bench_queries -- --quick
//! cargo run --release -p pgrid-bench --bin bench_queries -- \
//!     --peers 192 --lookups 240000 --out BENCH_queries.json
//! ```
//!
//! The same overlay (fixed seed) is driven twice — once with the per-peer
//! routing cache off (`cold`) and once with it on (`warm`) — so the cache
//! delta is measured against an identical trie.  The runner hard-asserts
//! the production floor (≥ 1M routed lookups/min over ≥ 48k lookups) and
//! the histogram-merge invariants (bucketwise additivity of the cold and
//! warm latency histograms, the property the sharded cluster coordinator
//! relies on) before writing the snapshot, so a published number can never
//! come from a run that missed the bar.

use pgrid_core::histogram::LogHistogram;
use pgrid_core::index::IndexId;
use pgrid_core::key::Key;
use pgrid_net::runtime::{NetConfig, QueryAggregates, Runtime};
use pgrid_workload::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// Virtual-time drain after each issued batch: long enough for a batch to
/// resolve (multi-hop forwards plus response), far below the 20s timeout.
const DRAIN_MS: u64 = 2_000;

/// One measured query-load window (a cold or warm run, or the shift
/// segment of the warm run).
struct Window {
    label: &'static str,
    issued: u64,
    answered: u64,
    succeeded: u64,
    wall_s: f64,
    /// Routed lookups per minute of wall clock (answered, not just issued —
    /// a lookup only counts once its response was actually routed back).
    lookups_per_min: f64,
    p50_ms: u64,
    p99_ms: u64,
    p999_ms: u64,
    mean_hops: f64,
    /// Latency histogram of exactly this window (cumulative stats diffed).
    histogram: LogHistogram,
}

fn config(n_peers: usize, route_cache: bool) -> NetConfig {
    NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 9,
        route_cache,
        ..NetConfig::default()
    }
}

/// Builds the overlay the load will run against (excluded from timing).
fn build_runtime(n_peers: usize, route_cache: bool) -> Runtime {
    let mut rt = Runtime::new(config(n_peers, route_cache));
    for peer in 0..n_peers {
        rt.join_peer(peer, 4);
    }
    rt.replication_phase();
    rt.run_until(10_000);
    rt.start_construction();
    rt.run_until(400_000);
    rt
}

/// The histogram of the queries resolved between two cumulative snapshots:
/// bucketwise difference, rebuilt through the same sparse codec the
/// cluster wire format uses.
fn histogram_delta(before: &LogHistogram, after: &LogHistogram) -> LogHistogram {
    let earlier: BTreeMap<u16, u64> = before.sparse_buckets().into_iter().collect();
    let buckets: Vec<(u16, u64)> = after
        .sparse_buckets()
        .into_iter()
        .map(|(bucket, count)| (bucket, count - earlier.get(&bucket).copied().unwrap_or(0)))
        .filter(|&(_, count)| count > 0)
        .collect();
    LogHistogram::from_sparse(&buckets, after.sum() - before.sum(), after.max())
}

/// Issues `total` lookups in batches against an already-constructed
/// runtime and measures the wall clock until every one of them resolved
/// (answered or timed out).  Returns the window plus the cumulative stats
/// at its end, so callers can chain further windows.
fn run_lookup_load(
    rt: &mut Runtime,
    label: &'static str,
    total: u64,
    batch: usize,
) -> (Window, QueryAggregates) {
    let keys: Vec<Key> = rt
        .original_entries_of(IndexId::PRIMARY)
        .iter()
        .map(|e| e.key)
        .collect();
    let before = rt.metrics.stats(IndexId::PRIMARY);
    let start = Instant::now();
    let mut issued = 0u64;
    let mut cursor = 0usize;
    let mut scratch: Vec<Key> = Vec::with_capacity(batch);
    while issued < total {
        scratch.clear();
        let want = batch.min((total - issued) as usize);
        for _ in 0..want {
            // A coprime stride walks the whole corpus without clustering
            // consecutive lookups on neighbouring keys.
            cursor = (cursor + 7) % keys.len();
            scratch.push(keys[cursor]);
        }
        rt.issue_query_batch_on(IndexId::PRIMARY, &scratch);
        issued += want as u64;
        rt.run_until(rt.now() + DRAIN_MS);
    }
    // Let stragglers resolve (or their timeouts fire) before closing the
    // window: throughput counts *routed* lookups, so the clock must cover
    // every response we credit.
    rt.run_until(rt.now() + rt.config.query_timeout_ms + 10_000);
    let wall_s = start.elapsed().as_secs_f64();
    let after = rt.metrics.stats(IndexId::PRIMARY);
    let histogram = histogram_delta(&before.latency, &after.latency);
    let answered = after.answered - before.answered;
    let succeeded = after.succeeded - before.succeeded;
    let window = Window {
        label,
        issued,
        answered,
        succeeded,
        wall_s,
        lookups_per_min: answered as f64 / wall_s * 60.0,
        p50_ms: histogram.quantile(0.50).unwrap_or(0),
        p99_ms: histogram.quantile(0.99).unwrap_or(0),
        p999_ms: histogram.quantile(0.999).unwrap_or(0),
        mean_hops: if succeeded == 0 {
            0.0
        } else {
            (after.hops_sum_successful - before.hops_sum_successful) as f64 / succeeded as f64
        },
        histogram,
    };
    (window, after)
}

/// The distribution-shift segment: inject a skewed (Pareto-1.0) key wave
/// into the warm overlay, restart construction, and keep issuing lookups
/// while the trie re-balances underneath them.  Returns the shift window
/// and the virtual minutes construction needed to go quiescent again.
fn run_shift_segment(rt: &mut Runtime, total: u64, batch: usize) -> (Window, f64) {
    let n_peers = rt.config.n_peers;
    let mut rng = StdRng::seed_from_u64(0x5158);
    let shift = Distribution::Pareto { shape: 1.0 };
    for peer in 0..n_peers {
        let keys = shift.sample_many(4, &mut rng);
        rt.insert_entries(IndexId::PRIMARY, peer, keys);
    }
    rt.start_construction();
    let rebalance_start = rt.now();
    let (window, _) = run_lookup_load(rt, "shift", total, batch);
    // Drive the runtime until construction settles so the re-convergence
    // time covers the whole re-balance, not just the query window.
    let mut guard = 0;
    while !rt.construction_quiescent() && guard < 600 {
        rt.run_until(rt.now() + 10_000);
        guard += 1;
    }
    let reconverge_min = (rt.now() - rebalance_start) as f64 / 60_000.0;
    (window, reconverge_min)
}

fn print_window(w: &Window) {
    println!(
        "{:>7} {:>9} {:>9} {:>9.1} {:>13.0} {:>8} {:>8} {:>8} {:>7.2}",
        w.label,
        w.issued,
        w.answered,
        w.wall_s,
        w.lookups_per_min,
        w.p50_ms,
        w.p99_ms,
        w.p999_ms,
        w.mean_hops
    );
}

fn window_json(w: &Window) -> String {
    format!(
        "{{\"label\": \"{}\", \"issued\": {}, \"answered\": {}, \"succeeded\": {}, \
         \"wall_s\": {:.3}, \"lookups_per_min\": {:.0}, \"p50_ms\": {}, \"p99_ms\": {}, \
         \"p999_ms\": {}, \"mean_hops\": {:.3}}}",
        w.label,
        w.issued,
        w.answered,
        w.succeeded,
        w.wall_s,
        w.lookups_per_min,
        w.p50_ms,
        w.p99_ms,
        w.p999_ms,
        w.mean_hops
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let option = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|at| args.get(at + 1))
            .cloned()
    };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n_peers: usize = option("--peers")
        .map(|v| v.parse().expect("--peers must be an integer"))
        .unwrap_or(if quick { 96 } else { 192 });
    let total: u64 = option("--lookups")
        .map(|v| v.parse().expect("--lookups must be an integer"))
        .unwrap_or(if quick { 48_000 } else { 240_000 });
    let batch: usize = option("--batch")
        .map(|v| v.parse().expect("--batch must be an integer"))
        .unwrap_or(600);
    let out = option("--out").unwrap_or_else(|| "BENCH_queries.json".to_string());
    // The floor the issue pins: a (48k+, per-mode) load must sustain at
    // least one million routed lookups per wall-clock minute on loopback.
    const FLOOR_PER_MIN: f64 = 1_000_000.0;
    const FLOOR_LOOKUPS: u64 = 48_000;
    assert!(
        total >= FLOOR_LOOKUPS,
        "--lookups {total} is below the {FLOOR_LOOKUPS} floor the throughput claim requires"
    );

    println!(
        "query data plane: {n_peers} peers, {total} lookups/mode, batch {batch}, \
         host parallelism {host_threads}"
    );
    println!(
        "{:>7} {:>9} {:>9} {:>9} {:>13} {:>8} {:>8} {:>8} {:>7}",
        "mode",
        "issued",
        "answered",
        "wall s",
        "lookups/min",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "hops"
    );

    // Cold: routing cache off (the reference configuration every other
    // experiment runs with).
    let mut cold_rt = build_runtime(n_peers, false);
    let (cold, _) = run_lookup_load(&mut cold_rt, "cold", total, batch);
    print_window(&cold);
    drop(cold_rt);

    // Warm: identical overlay, per-peer routing cache on.
    let mut warm_rt = build_runtime(n_peers, true);
    let (warm, _) = run_lookup_load(&mut warm_rt, "warm", total, batch);
    print_window(&warm);

    // Traced: the cold configuration again, but with structured tracing
    // on — every lookup allocates a trace ID, rides a `Traced` envelope
    // and records its hop chain.  The delta against `cold` is the price
    // of *enabled* tracing; `cold` itself runs with the tracer compiled
    // in but off, so its floor assertion below is the
    // tracing-disabled-overhead gate.
    let mut traced_rt = build_runtime(n_peers, false);
    traced_rt.enable_tracing();
    let (traced, _) = run_lookup_load(&mut traced_rt, "traced", total, batch);
    print_window(&traced);
    let trace_events = traced_rt.tracer.drain().len();
    assert!(
        trace_events > 0,
        "the traced window recorded no trace events"
    );
    let tracing_overhead = cold.lookups_per_min / traced.lookups_per_min - 1.0;
    println!(
        "tracing overhead: {:.0} -> {:.0} lookups/min ({:+.1}% when enabled, {} events)",
        cold.lookups_per_min,
        traced.lookups_per_min,
        tracing_overhead * 100.0,
        trace_events
    );
    drop(traced_rt);

    // Shift: skewed key wave + live re-balance on the warm overlay.
    let shift_total = if quick { total / 4 } else { total / 2 };
    let (shift, reconverge_min) = run_shift_segment(&mut warm_rt, shift_total.max(1_000), batch);
    print_window(&shift);
    println!(
        "distribution shift: p99 {} ms during re-balance (baseline {} ms), \
         construction re-converged in {:.1} virtual min",
        shift.p99_ms, warm.p99_ms, reconverge_min
    );

    let cache_speedup = warm.lookups_per_min / cold.lookups_per_min;
    println!(
        "route cache delta: {:.0} -> {:.0} lookups/min ({:.2}x), p50 {} -> {} ms",
        cold.lookups_per_min, warm.lookups_per_min, cache_speedup, cold.p50_ms, warm.p50_ms
    );

    // -- Hard gates: a snapshot is only written if every claim holds. ----
    // Tracing-disabled overhead: the instrumented-but-off data plane must
    // stay within noise of the pre-instrumentation baseline, i.e. still
    // clear the same 1M/min production floor the PR-6 runner pinned.
    assert!(
        cold.lookups_per_min >= FLOOR_PER_MIN,
        "tracing-disabled run fell below the pre-instrumentation floor: \
         {:.0} < {FLOOR_PER_MIN:.0} lookups/min",
        cold.lookups_per_min
    );
    for w in [&cold, &warm] {
        assert!(
            w.answered * 100 >= w.issued * 95,
            "{}: only {}/{} lookups answered — the load outran the drain windows",
            w.label,
            w.answered,
            w.issued
        );
        assert!(
            w.lookups_per_min >= FLOOR_PER_MIN,
            "{}: {:.0} routed lookups/min is below the {FLOOR_PER_MIN:.0}/min floor",
            w.label,
            w.lookups_per_min
        );
    }

    // Histogram-merge invariants: folding the cold window into the warm
    // one must be exactly bucketwise addition — the property the cluster
    // coordinator depends on when it merges per-shard aggregates.
    let mut merged = cold.histogram.clone();
    merged.merge(&warm.histogram);
    assert_eq!(
        merged.total(),
        cold.histogram.total() + warm.histogram.total(),
        "histogram merge lost samples"
    );
    assert_eq!(
        merged.sum(),
        cold.histogram.sum() + warm.histogram.sum(),
        "histogram merge lost latency mass"
    );
    assert_eq!(
        merged.max(),
        cold.histogram.max().max(warm.histogram.max()),
        "histogram merge lost the maximum"
    );
    let cold_buckets: BTreeMap<u16, u64> = cold.histogram.sparse_buckets().into_iter().collect();
    let warm_buckets: BTreeMap<u16, u64> = warm.histogram.sparse_buckets().into_iter().collect();
    for (bucket, count) in merged.sparse_buckets() {
        let expected = cold_buckets.get(&bucket).copied().unwrap_or(0)
            + warm_buckets.get(&bucket).copied().unwrap_or(0);
        assert_eq!(
            count, expected,
            "bucket {bucket} is not additive under merge"
        );
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"query_data_plane\",\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"n_peers\": {n_peers},\n"));
    json.push_str(&format!("  \"lookups_per_mode\": {total},\n"));
    json.push_str(&format!(
        "  \"throughput_floor_per_min\": {FLOOR_PER_MIN:.0},\n"
    ));
    json.push_str(&format!("  \"route_cache_speedup\": {cache_speedup:.3},\n"));
    json.push_str(&format!(
        "  \"tracing_enabled_overhead\": {tracing_overhead:.3},\n"
    ));
    json.push_str(&format!(
        "  \"shift_reconverge_virtual_min\": {reconverge_min:.2},\n"
    ));
    json.push_str("  \"windows\": [\n");
    let windows = [&cold, &warm, &traced, &shift];
    for (at, w) in windows.iter().enumerate() {
        json.push_str(&format!(
            "    {}{}\n",
            window_json(w),
            if at + 1 == windows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("snapshot file must be writable");
    println!("snapshot written to {out}");
}
