//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p pgrid-bench --bin figures -- all
//! cargo run --release -p pgrid-bench --bin figures -- fig4 fig5
//! cargo run --release -p pgrid-bench --bin figures -- --quick all
//! ```
//!
//! Each sub-command prints the series of one figure/table as an aligned
//! text table; `EXPERIMENTS.md` records a captured run next to the values
//! the paper reports.  `--quick` reduces repetition counts and network
//! sizes so the whole suite finishes in a couple of minutes.
//!
//! `--assert-reference` re-runs the deployment block at full effort and
//! asserts its key summary numbers against the reference run captured in
//! `EXPERIMENTS.md` (every experiment is seeded, so the values must
//! reproduce exactly); CI runs this so a protocol change that shifts the
//! deployment statistics fails loudly instead of silently invalidating the
//! recorded reference.

use pgrid_bench::{format_header, format_row, mean, std_dev};
use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::NetConfig;
use pgrid_partition::experiment::{run_sweep, SweepConfig};
use pgrid_partition::probabilities::{alpha_of_p, alpha_second_derivative, q_of_p};
// Every sweep and the deployment run through the scenario executor (the
// canned programs are bit-identical to the historical direct drivers —
// pinned by pgrid-scenario's timeline_parity test).
use pgrid_scenario::deployment::run_deployment;
use pgrid_scenario::sweeps::{
    population_sweep, replication_sweep, run_repeated, sample_size_sweep,
};
use pgrid_sim::config::{ConstructionStrategy, SimConfig};
use pgrid_sim::sequential::construct_sequentially;
use pgrid_workload::distributions::Distribution;

struct Effort {
    repetitions: usize,
    partition_repetitions: usize,
    populations: Vec<usize>,
    deployment_peers: usize,
}

impl Effort {
    fn full() -> Effort {
        Effort {
            repetitions: 5,
            partition_repetitions: 100,
            populations: vec![256, 512, 1024],
            deployment_peers: 296,
        }
    }
    fn quick() -> Effort {
        Effort {
            repetitions: 2,
            partition_repetitions: 25,
            populations: vec![64, 128, 256],
            deployment_peers: 96,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick {
        Effort::quick()
    } else {
        Effort::full()
    };
    let assert_reference = args.iter().any(|a| a == "--assert-reference");
    let requested: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--quick" && *a != "--assert-reference")
        .collect();
    // Bare `--assert-reference` runs only the reference check; naming
    // figures (or `all`) alongside it runs those too.
    let all = requested.contains(&"all") || (requested.is_empty() && !assert_reference);
    let want = |name: &str| all || requested.contains(&name);

    if want("fig3") {
        fig3();
    }
    if want("fig4") || want("fig5") {
        fig4_fig5(&effort);
    }
    if want("fig6a") || want("fig6e") || want("fig6f") {
        fig6_population(&effort);
    }
    if want("fig6b") {
        fig6b(&effort);
    }
    if want("fig6c") {
        fig6c(&effort);
    }
    if want("fig6d") {
        fig6d(&effort);
    }
    if want("complexity") {
        complexity(&effort);
    }
    let mut deployment_report = None;
    if want("fig7") || want("fig8") || want("fig9") || want("table5") {
        deployment_report = Some(deployment(&effort));
    }
    if assert_reference {
        // The reference in EXPERIMENTS.md was captured at full effort; the
        // deployment is fully seeded, so the comparison is exact (at the
        // printed precision).  Reuse the block that just ran unless it ran
        // at --quick effort.
        let report = match deployment_report {
            Some(report) if !quick => report,
            _ => deployment(&Effort::full()),
        };
        let checks = [
            (
                "load-balance deviation",
                format!("{:.3}", report.balance_deviation),
                REFERENCE_BALANCE_DEVIATION,
            ),
            (
                "mean replication",
                format!("{:.2}", report.mean_replication),
                REFERENCE_MEAN_REPLICATION,
            ),
        ];
        let mut failed = false;
        println!("\nreference check against EXPERIMENTS.md:");
        for (name, got, expected) in &checks {
            let ok = got == expected;
            failed |= !ok;
            println!(
                "  {name:<24} {got} (reference {expected}) {}",
                if ok { "ok" } else { "MISMATCH" }
            );
        }
        assert!(
            !failed,
            "deployment statistics diverged from the EXPERIMENTS.md reference run; \
             if the change is intentional, re-capture EXPERIMENTS.md and update the \
             REFERENCE_* constants in figures.rs"
        );
    }
}

/// Key Section 5.2 numbers of the reference `figures -- all` run recorded
/// in `EXPERIMENTS.md` (deployment block, 296 peers, seed 0x5_2), at the
/// precision the summary prints them.
const REFERENCE_BALANCE_DEVIATION: &str = "0.636";
/// See [`REFERENCE_BALANCE_DEVIATION`].
const REFERENCE_MEAN_REPLICATION: &str = "4.48";

/// Figure 3: curvature of the balanced-split probability.
fn fig3() {
    println!("\n=== Figure 3: decision probabilities and their curvature ===");
    println!(
        "{}",
        format_header(
            "p",
            &["alpha(p)".into(), "q(p)".into(), "alpha''(p)".into()]
        )
    );
    for i in 1..=30 {
        let p = i as f64 / 100.0;
        println!(
            "{}",
            format_row(
                &format!("{p:.2}"),
                &[alpha_of_p(p), q_of_p(p), alpha_second_derivative(p)]
            )
        );
    }
    println!("(the curvature explodes approaching the critical ratio 1 - ln 2 ≈ 0.307,");
    println!(" which is where sampling errors hurt the most — cf. Figure 3 of the paper)");
}

/// Figures 4 and 5: deviation from the expected split and interaction counts
/// for the five partitioning models.
fn fig4_fig5(effort: &Effort) {
    println!(
        "\n=== Figures 4 & 5: one bisection, n = 1000 peers, sample size 10, {} repetitions ===",
        effort.partition_repetitions
    );
    let config = SweepConfig {
        repetitions: effort.partition_repetitions,
        ..SweepConfig::default()
    };
    let rows = run_sweep(&config);
    println!("\nFigure 4 — mean(peers on side 0) - n*p:");
    println!(
        "{}",
        format_header(
            "p",
            &[
                "MVA".into(),
                "SAM".into(),
                "AEP".into(),
                "COR".into(),
                "AUT".into()
            ]
        )
    );
    for row in &rows {
        println!(
            "{}",
            format_row(
                &format!("{:.2}", row.p),
                &[
                    row.mva.mean_deviation,
                    row.sam.mean_deviation,
                    row.aep.mean_deviation,
                    row.cor.mean_deviation,
                    row.aut.mean_deviation,
                ]
            )
        );
    }
    println!("\nFigure 5 — mean total number of interactions:");
    println!(
        "{}",
        format_header(
            "p",
            &[
                "MVA".into(),
                "SAM".into(),
                "AEP".into(),
                "COR".into(),
                "AUT".into()
            ]
        )
    );
    for row in &rows {
        println!(
            "{}",
            format_row(
                &format!("{:.2}", row.p),
                &[
                    row.mva.mean_interactions,
                    row.sam.mean_interactions,
                    row.aep.mean_interactions,
                    row.cor.mean_interactions,
                    row.aut.mean_interactions,
                ]
            )
        );
    }
}

/// Figures 6a, 6e, 6f: deviation, interactions per peer and keys moved per
/// peer over the six workloads and three population sizes.
fn fig6_population(effort: &Effort) {
    println!(
        "\n=== Figures 6a / 6e / 6f: populations {:?}, n_min = 5, delta_max = 10*n_min, {} repetitions ===",
        effort.populations, effort.repetitions
    );
    let rows = population_sweep(
        &effort.populations,
        5,
        effort.repetitions,
        ConstructionStrategy::Aep,
        0xF16,
    );
    let labels: Vec<String> = Distribution::paper_suite()
        .iter()
        .map(|d| d.label())
        .collect();
    for (title, value) in [
        ("Figure 6a — load-balance deviation", 0usize),
        ("Figure 6e — interactions per peer", 1),
        ("Figure 6f — data keys moved per peer", 2),
    ] {
        println!("\n{title}:");
        println!("{}", format_header("n", &labels));
        for &n in &effort.populations {
            let cells: Vec<f64> = Distribution::paper_suite()
                .iter()
                .map(|d| {
                    let row = rows
                        .iter()
                        .find(|r| r.n_peers == n && r.distribution == d.label())
                        .expect("row exists");
                    match value {
                        0 => row.deviation,
                        1 => row.interactions_per_peer,
                        _ => row.keys_moved_per_peer,
                    }
                })
                .collect();
            println!("{}", format_row(&n.to_string(), &cells));
        }
    }
}

/// Figure 6b: varying the required replication factor.
fn fig6b(effort: &Effort) {
    println!("\n=== Figure 6b: deviation for n = 256, n_min in {{5, 10, 15, 20, 25}} ===");
    let n_peers = *effort.populations.first().unwrap_or(&256);
    let rows = replication_sweep(n_peers, &[5, 10, 15, 20, 25], effort.repetitions, 0xF6B);
    let labels: Vec<String> = Distribution::paper_suite()
        .iter()
        .map(|d| d.label())
        .collect();
    println!("{}", format_header("n_min", &labels));
    for &n_min in &[5usize, 10, 15, 20, 25] {
        let cells: Vec<f64> = Distribution::paper_suite()
            .iter()
            .map(|d| {
                rows.iter()
                    .find(|r| r.n_min == n_min && r.distribution == d.label())
                    .map(|r| r.deviation)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        println!("{}", format_row(&n_min.to_string(), &cells));
    }
}

/// Figure 6c: varying the storage bound (the sample available to the load
/// estimate).
fn fig6c(effort: &Effort) {
    println!("\n=== Figure 6c: deviation for n = 256, delta_max in {{10, 20, 30}} * n_min ===");
    let n_peers = *effort.populations.first().unwrap_or(&256);
    let rows = sample_size_sweep(n_peers, 5, &[10, 20, 30], effort.repetitions, 0xF6C);
    let labels: Vec<String> = Distribution::paper_suite()
        .iter()
        .map(|d| d.label())
        .collect();
    println!("{}", format_header("delta/n_min", &labels));
    for &m in &[10usize, 20, 30] {
        let cells: Vec<f64> = Distribution::paper_suite()
            .iter()
            .map(|d| {
                rows.iter()
                    .find(|r| r.delta_max == m * 5 && r.distribution == d.label())
                    .map(|r| r.deviation)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        println!("{}", format_row(&m.to_string(), &cells));
    }
}

/// Figure 6d: theoretically derived probabilities versus heuristics.
fn fig6d(effort: &Effort) {
    println!(
        "\n=== Figure 6d: theory vs. heuristic probabilities (deviation, n_min = 5 and 10) ==="
    );
    let n_peers = *effort.populations.first().unwrap_or(&256);
    let labels: Vec<String> = Distribution::paper_suite()
        .iter()
        .map(|d| d.label())
        .collect();
    println!("{}", format_header("variant", &labels));
    for &n_min in &[5usize, 10] {
        for (name, strategy) in [
            ("theory", ConstructionStrategy::Aep),
            ("heuristic", ConstructionStrategy::Heuristic),
        ] {
            let cells: Vec<f64> = Distribution::paper_suite()
                .iter()
                .map(|d| {
                    let config = SimConfig {
                        n_peers,
                        n_min,
                        distribution: *d,
                        strategy,
                        seed: 0xF6D,
                        ..SimConfig::default()
                    };
                    run_repeated(&config, effort.repetitions).deviation
                })
                .collect();
            println!("{}", format_row(&format!("{name}-{n_min}"), &cells));
        }
    }
}

/// Section 4.3: parallel versus sequential construction complexity.
fn complexity(effort: &Effort) {
    println!("\n=== Section 4.3: construction complexity, parallel vs. sequential ===");
    println!(
        "{}",
        format_header(
            "n",
            &[
                "par rounds".into(),
                "par inter/peer".into(),
                "seq latency".into(),
                "seq msg/peer".into(),
            ]
        )
    );
    for &n in &effort.populations {
        let config = SimConfig {
            n_peers: n,
            seed: 0xC0,
            ..SimConfig::default()
        };
        let parallel = run_repeated(&config, effort.repetitions.max(1));
        let sequential = construct_sequentially(&config);
        println!(
            "{}",
            format_row(
                &n.to_string(),
                &[
                    parallel.rounds,
                    parallel.interactions_per_peer,
                    sequential.latency as f64,
                    sequential.messages as f64 / n as f64,
                ]
            )
        );
    }
}

/// Figures 7, 8, 9 and the Section 5.2 summary table from the deployment
/// runtime; returns the report so `--assert-reference` can check it.
fn deployment(effort: &Effort) -> pgrid_net::experiment::DeploymentReport {
    println!(
        "\n=== Figures 7 / 8 / 9 and Section 5.2 summary: deployment with {} peers ===",
        effort.deployment_peers
    );
    let config = NetConfig {
        n_peers: effort.deployment_peers,
        seed: 0x5_2,
        ..NetConfig::default()
    };
    let timeline = Timeline::default();
    let report = run_deployment(&config, &timeline);

    println!("\nFigures 7 & 8 & 9 — per-minute time series:");
    println!(
        "{}",
        format_header(
            "minute",
            &[
                "peers".into(),
                "maint B/s".into(),
                "query B/s".into(),
                "lat mean s".into(),
                "lat std s".into(),
            ]
        )
    );
    for sample in report.timeline.iter().step_by(2) {
        println!(
            "{}",
            format_row(
                &sample.minute.to_string(),
                &[
                    sample.peers_online as f64,
                    sample.maintenance_bps,
                    sample.query_bps,
                    sample.query_latency_mean_s,
                    sample.query_latency_std_s,
                ]
            )
        );
    }

    let query_phase: Vec<f64> = report
        .timeline
        .iter()
        .filter(|s| s.minute > timeline.construct_end_min && s.minute <= timeline.query_end_min)
        .map(|s| s.query_latency_mean_s)
        .filter(|v| *v > 0.0)
        .collect();
    let churn_phase: Vec<f64> = report
        .timeline
        .iter()
        .filter(|s| s.minute > timeline.query_end_min)
        .map(|s| s.query_latency_mean_s)
        .filter(|v| *v > 0.0)
        .collect();

    println!("\nSection 5.2 summary (paper values in parentheses):");
    println!(
        "  load-balance deviation : {:.3}   (paper: 0.39 deployment / 0.38 simulation)",
        report.balance_deviation
    );
    println!(
        "  mean path length       : {:.2}   (paper: slightly below 6 at ~300 peers)",
        report.mean_path_length
    );
    println!(
        "  mean query hops        : {:.2}   (paper: ≈ 3, about half the path length)",
        report.mean_query_hops
    );
    println!(
        "  query success rate     : {:.1}%  (paper: 95–100% even under churn)",
        100.0 * report.query_success_rate
    );
    println!(
        "  mean replication       : {:.2}   (paper: ≈ 5)",
        report.mean_replication
    );
    println!(
        "  query latency          : {:.2}s ± {:.2}s stable phase, {:.2}s ± {:.2}s under churn",
        mean(&query_phase),
        std_dev(&query_phase),
        mean(&churn_phase),
        std_dev(&churn_phase),
    );
    report
}
