//! Transport backend shootout: the threaded TCP backend (one listener +
//! acceptor thread per hosted peer) against the epoll reactor (every peer
//! behind one multiplexed listener) — emitted as an aligned text report
//! and a `BENCH_transport.json` snapshot for CI archival.
//!
//! ```text
//! cargo run --release -p pgrid-bench --bin bench_transport
//! cargo run --release -p pgrid-bench --bin bench_transport -- --quick
//! cargo run --release -p pgrid-bench --bin bench_transport -- \
//!     --peers 1000 --frames 20000 --out BENCH_transport.json
//! ```
//!
//! Two measurements per backend:
//!
//! * **hosting cost** — a child process (fresh allocator, fresh fd table)
//!   registers N local peers and reports the resident-set and descriptor
//!   delta, giving honest bytes/peer and fds/peer numbers;
//! * **wire throughput** — a sender transport pushes realistic exchange
//!   frames to N peers hosted by a second transport in the same process
//!   (over real sockets for both backends) and the wall clock gives
//!   frames/sec; for the reactor the epoll wake-up counter also yields
//!   wakeups/frame.
//!
//! Hard gates (the PR's claims): the reactor must be **no slower** than
//! the threaded backend at the comparison point and **materially lighter**
//! per hosted peer, on a constant number of descriptors.  The deep phase
//! (skipped with `--quick`) repeats both measurements at 50k peers —
//! a scale the threaded backend cannot reach at all.

use bytes::Bytes;
use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::Path;
use pgrid_core::routing::PeerId;
use pgrid_net::message::Message;
use pgrid_reactor::ReactorTransport;
use pgrid_transport::frame::encode_frame;
use pgrid_transport::tcp::TcpTransport;
use pgrid_transport::{PeerAddr, SocketTransport, Transport};
use std::time::{Duration, Instant};

/// Resident set size of this process in bytes (`VmRSS` of
/// `/proc/self/status`); 0 where procfs is unavailable.
fn vm_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Open descriptors of this process; 0 where procfs is unavailable.
fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .map(|dir| dir.count() as u64)
        .unwrap_or(0)
}

/// One exchange frame the way the deployment runtime sends them: a single
/// `Exchange` message with a realistic entry batch.
fn payload() -> Bytes {
    let entries: Vec<DataEntry> = (0..10)
        .map(|j| DataEntry::new(Key::from_fraction(j as f64 / 10.0), DataId(j as u64)))
        .collect();
    encode_frame(std::slice::from_ref(
        &Message::Exchange {
            from: PeerId(0),
            path: Path::parse("0101"),
            entries,
        }
        .encode(),
    ))
}

/// Hosting-cost numbers reported by a `--host-probe` child process.
struct HostCost {
    rss_delta_bytes: u64,
    fds_delta: u64,
    wall_s: f64,
}

impl HostCost {
    fn bytes_per_peer(&self, peers: u64) -> f64 {
        self.rss_delta_bytes as f64 / peers.max(1) as f64
    }
}

/// Child-process entry point: register `peers` local endpoints on the
/// chosen backend, report the RSS/fd delta on stdout, exit.  Run in a
/// separate process so the two backends never share allocator arenas or
/// fd tables — the deltas are attributable.
fn host_probe(backend: &str, peers: u64) -> ! {
    let rss0 = vm_rss_bytes();
    let fds0 = open_fds();
    let start = Instant::now();
    let (rss1, fds1) = match backend {
        "threaded" => {
            let mut transport = TcpTransport::new();
            for p in 0..peers {
                transport.register(PeerId(p)).expect("register");
            }
            (vm_rss_bytes(), open_fds())
        }
        "reactor" => {
            let mut transport = ReactorTransport::new();
            for p in 0..peers {
                transport.register(PeerId(p)).expect("register");
            }
            (vm_rss_bytes(), open_fds())
        }
        other => panic!("unknown backend {other:?}"),
    };
    println!(
        "HOST_PROBE rss_delta_bytes={} fds_delta={} wall_s={:.3}",
        rss1.saturating_sub(rss0),
        fds1.saturating_sub(fds0),
        start.elapsed().as_secs_f64()
    );
    std::process::exit(0);
}

/// Runs the `--host-probe` child for one backend and parses its report.
fn probe_host_cost(backend: &str, peers: u64) -> HostCost {
    let exe = std::env::current_exe().expect("current_exe");
    let output = std::process::Command::new(exe)
        .args(["--host-probe", backend, "--peers", &peers.to_string()])
        .output()
        .expect("host probe child must spawn");
    assert!(
        output.status.success(),
        "host probe ({backend}, {peers} peers) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("HOST_PROBE "))
        .unwrap_or_else(|| panic!("no HOST_PROBE line in {stdout:?}"));
    let field = |name: &str| -> f64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {name} in {line:?}"))
    };
    HostCost {
        rss_delta_bytes: field("rss_delta_bytes") as u64,
        fds_delta: field("fds_delta") as u64,
        wall_s: field("wall_s"),
    }
}

/// Wire-throughput numbers of one backend.
struct WireRun {
    wall_s: f64,
    frames_per_s: f64,
    /// epoll wake-ups per delivered frame (reactor only).
    wakeups_per_frame: Option<f64>,
    /// Descriptors the hosting side holds (reactor only — constant).
    host_fds: Option<u64>,
}

/// Pushes `frames` exchange frames from a sender transport to `n_peers`
/// endpoints hosted by `host`, round-robin, draining the host as it goes,
/// and returns the steady-state throughput.  Both instances live in this
/// process but every frame crosses a real socket.
fn wire_throughput<T: SocketTransport>(
    mut host: T,
    mut sender: T,
    n_peers: u64,
    frames: u64,
    frame: &Bytes,
) -> WireRun {
    let mut addrs = Vec::with_capacity(n_peers as usize);
    for p in 0..n_peers {
        match host.register(PeerId(p)).expect("host register") {
            PeerAddr::Socket(addr) => addrs.push(addr),
            PeerAddr::Local(_) => unreachable!("socket backends return socket addresses"),
        }
    }
    // The sender hosts one endpoint of its own (so the backend is fully
    // started) and knows every hosted peer by address.
    sender
        .register(PeerId(u64::MAX - 1))
        .expect("sender register");
    for (p, addr) in addrs.iter().enumerate() {
        sender
            .register_remote(PeerId(p as u64), *addr)
            .expect("register_remote");
    }

    let wakeups_before = host.stats().reactor.map(|r| r.epoll_wakeups);
    let start = Instant::now();
    let mut sent = 0u64;
    let mut delivered = 0u64;
    while sent < frames {
        // Batches keep the reactor's bounded write queue comfortably below
        // capacity while the same thread also drains the hosting side.
        let batch = 256.min(frames - sent);
        for i in 0..batch {
            let dest = (sent + i) % n_peers;
            sender
                .send(0, PeerId(dest), frame.clone())
                .expect("send must succeed");
        }
        sent += batch;
        delivered += host.poll(u64::MAX).len() as u64;
    }
    let deadline = Instant::now() + Duration::from_secs(180);
    while delivered < frames {
        delivered += host.poll(u64::MAX).len() as u64;
        if delivered < frames {
            assert!(
                Instant::now() < deadline,
                "backend stalled: {delivered}/{frames} frames delivered"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        delivered, frames,
        "socket delivery within a process is lossless"
    );

    let host_stats = host.stats();
    let wakeups_per_frame = match (wakeups_before, host_stats.reactor.as_ref()) {
        (Some(before), Some(after)) => {
            Some(after.epoll_wakeups.saturating_sub(before) as f64 / frames as f64)
        }
        _ => None,
    };
    WireRun {
        wall_s,
        frames_per_s: frames as f64 / wall_s,
        wakeups_per_frame,
        host_fds: host_stats.reactor.map(|r| r.registered_fds),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let option = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|at| args.get(at + 1))
            .cloned()
    };
    if let Some(backend) = option("--host-probe") {
        let peers: u64 = option("--peers")
            .map(|v| v.parse().expect("--peers must be an integer"))
            .unwrap_or(1_000);
        host_probe(&backend, peers);
    }

    let quick = args.iter().any(|a| a == "--quick");
    let peers: u64 = option("--peers")
        .map(|v| v.parse().expect("--peers must be an integer"))
        .unwrap_or(if quick { 200 } else { 1_000 });
    let frames: u64 = option("--frames")
        .map(|v| v.parse().expect("--frames must be an integer"))
        .unwrap_or(if quick { 5_000 } else { 20_000 });
    let deep_peers: u64 = option("--deep-peers")
        .map(|v| v.parse().expect("--deep-peers must be an integer"))
        .unwrap_or(50_000);
    let out = option("--out").unwrap_or_else(|| "BENCH_transport.json".to_string());
    let frame = payload();

    // --- hosting cost (child processes, one per backend) -----------------
    let threaded_host = probe_host_cost("threaded", peers);
    println!(
        "host   : threaded {peers} peers — {:.0} B/peer rss, {} fds, {:.2}s",
        threaded_host.bytes_per_peer(peers),
        threaded_host.fds_delta,
        threaded_host.wall_s
    );
    let reactor_host = pgrid_reactor::supported().then(|| {
        let cost = probe_host_cost("reactor", peers);
        println!(
            "host   : reactor  {peers} peers — {:.0} B/peer rss, {} fds, {:.2}s",
            cost.bytes_per_peer(peers),
            cost.fds_delta,
            cost.wall_s
        );
        cost
    });

    // --- wire throughput --------------------------------------------------
    let threaded_wire = wire_throughput(
        TcpTransport::new(),
        TcpTransport::new(),
        peers,
        frames,
        &frame,
    );
    println!(
        "wire   : threaded {frames} frames to {peers} peers in {:.3}s — {:.0} frames/s",
        threaded_wire.wall_s, threaded_wire.frames_per_s
    );
    let reactor_wire = pgrid_reactor::supported().then(|| {
        let run = wire_throughput(
            ReactorTransport::new(),
            ReactorTransport::new(),
            peers,
            frames,
            &frame,
        );
        println!(
            "wire   : reactor  {frames} frames to {peers} peers in {:.3}s — \
             {:.0} frames/s, {:.2} wakeups/frame, {} host fds",
            run.wall_s,
            run.frames_per_s,
            run.wakeups_per_frame.unwrap_or(0.0),
            run.host_fds.unwrap_or(0)
        );
        run
    });

    // --- the PR's hard gates ----------------------------------------------
    if let (Some(reactor_host), Some(reactor_wire)) = (&reactor_host, &reactor_wire) {
        assert!(
            reactor_wire.frames_per_s >= threaded_wire.frames_per_s,
            "the reactor must be no slower than the threaded backend: \
             {:.0} vs {:.0} frames/s",
            reactor_wire.frames_per_s,
            threaded_wire.frames_per_s
        );
        assert!(
            reactor_host.bytes_per_peer(peers) * 2.0 <= threaded_host.bytes_per_peer(peers),
            "the reactor must be materially lighter per hosted peer: \
             {:.0} vs {:.0} B/peer",
            reactor_host.bytes_per_peer(peers),
            threaded_host.bytes_per_peer(peers)
        );
        assert!(
            reactor_host.fds_delta < 16,
            "reactor descriptors must not scale with peers: {} fds",
            reactor_host.fds_delta
        );
        assert!(
            threaded_host.fds_delta >= peers,
            "the threaded backend binds one listener per peer: {} fds",
            threaded_host.fds_delta
        );
    } else {
        println!("wire   : reactor skipped — epoll is Linux-only");
    }

    // --- deep phase: the scale the threaded backend cannot reach ----------
    let deep = (!quick && pgrid_reactor::supported()).then(|| {
        let cost = probe_host_cost("reactor", deep_peers);
        println!(
            "deep   : reactor  {deep_peers} peers — {:.0} B/peer rss, {} fds, {:.2}s",
            cost.bytes_per_peer(deep_peers),
            cost.fds_delta,
            cost.wall_s
        );
        assert!(
            cost.fds_delta < 16,
            "50k hosted peers must still fit a handful of fds: {}",
            cost.fds_delta
        );
        let run = wire_throughput(
            ReactorTransport::new(),
            ReactorTransport::new(),
            deep_peers,
            frames,
            &frame,
        );
        println!(
            "deep   : reactor  {frames} frames to {deep_peers} peers in {:.3}s — \
             {:.0} frames/s, {:.2} wakeups/frame",
            run.wall_s,
            run.frames_per_s,
            run.wakeups_per_frame.unwrap_or(0.0)
        );
        (cost, run)
    });

    // --- snapshot ----------------------------------------------------------
    let backend_json = |host: &HostCost, wire: &WireRun, n: u64| {
        format!(
            "{{\"peers\": {n}, \"host_rss_bytes_per_peer\": {:.0}, \"host_fds\": {}, \
             \"host_wall_s\": {:.3}, \"frames\": {frames}, \"wire_wall_s\": {:.3}, \
             \"frames_per_s\": {:.0}, \"wakeups_per_frame\": {}}}",
            host.bytes_per_peer(n),
            host.fds_delta,
            host.wall_s,
            wire.wall_s,
            wire.frames_per_s,
            wire.wakeups_per_frame
                .map(|w| format!("{w:.3}"))
                .unwrap_or_else(|| "null".to_string()),
        )
    };
    let reactor_json = match (&reactor_host, &reactor_wire) {
        (Some(host), Some(wire)) => backend_json(host, wire, peers),
        _ => "null".to_string(),
    };
    let deep_json = deep
        .as_ref()
        .map(|(cost, run)| backend_json(cost, run, deep_peers))
        .unwrap_or_else(|| "null".to_string());
    let json = format!(
        "{{\n  \"bench\": \"transport\",\n  \"quick\": {quick},\n  \
         \"reactor_supported\": {},\n  \
         \"threaded\": {},\n  \"reactor\": {reactor_json},\n  \"deep\": {deep_json}\n}}\n",
        pgrid_reactor::supported(),
        backend_json(&threaded_host, &threaded_wire, peers),
    );
    std::fs::write(&out, &json).expect("snapshot file must be writable");
    println!("snapshot written to {out}");
}
