//! Construction scaling runner: wall-clock of the parallel sharded
//! constructor over an `n_peers` × `n_threads` matrix, with a thread-count
//! parity check, emitted both as an aligned text table and as a
//! `BENCH_construction.json` snapshot for CI archival.
//!
//! ```text
//! cargo run --release -p pgrid-bench --bin bench_construction
//! cargo run --release -p pgrid-bench --bin bench_construction -- --quick
//! cargo run --release -p pgrid-bench --bin bench_construction -- \
//!     --sizes 1024,4096 --threads 1,2,4,8 --out BENCH_construction.json
//! ```
//!
//! Every cell constructs the same overlay (fixed seed, Pareto-1.0 keys —
//! the most demanding workload of the paper's suite) with a different
//! worker count; since the constructor is bit-identical across thread
//! counts, the runner also asserts that every cell of a row reproduces the
//! single-threaded peer placement, so a scaling number can never come from
//! a diverged (and therefore meaningless) run.

use pgrid_sim::config::SimConfig;
use pgrid_sim::construction::construct;
use pgrid_workload::distributions::Distribution;
use std::time::Instant;

struct Cell {
    n_peers: usize,
    n_threads: usize,
    wall_ms: f64,
    /// Wall-clock ratio against the single-threaded cell of the row;
    /// `None` when the host cannot actually run the cell's threads in
    /// parallel (single-core host, `n_threads > 1`) — a "speedup" measured
    /// there is pure scheduler hand-off noise, so it is not reported.
    speedup: Option<f64>,
    rounds: usize,
    interactions: usize,
    parity: bool,
}

fn config(n_peers: usize, n_threads: usize) -> SimConfig {
    SimConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Pareto { shape: 1.0 },
        seed: 1,
        n_threads,
        ..SimConfig::default()
    }
}

fn parse_list(value: &str) -> Vec<usize> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("list entries must be integers"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let option = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|at| args.get(at + 1))
            .cloned()
    };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sizes = option("--sizes")
        .map(|v| parse_list(&v))
        .unwrap_or_else(|| {
            if quick {
                vec![256, 1024]
            } else {
                vec![1024, 4096]
            }
        });
    let threads = option("--threads")
        .map(|v| parse_list(&v))
        .unwrap_or_else(|| {
            let mut t = vec![1, 2, 4];
            if !t.contains(&host_threads) {
                t.push(host_threads);
            }
            t.retain(|&x| x >= 1);
            t.sort_unstable();
            t.dedup();
            if quick {
                t.truncate(2);
            }
            t
        });
    let out = option("--out").unwrap_or_else(|| "BENCH_construction.json".to_string());
    let repetitions = if quick { 1 } else { 2 };

    println!("construction scaling: sizes {sizes:?}, threads {threads:?}, host parallelism {host_threads}");
    if host_threads == 1 {
        println!(
            "single-core host: multi-thread cells run for the parity check only; \
             their speedup is reported as n/a (no parallel hardware to measure)"
        );
    }
    println!(
        "{:>8} {:>9} {:>12} {:>9} {:>8} {:>13} {:>7}",
        "n_peers", "threads", "wall ms", "speedup", "rounds", "interactions", "parity"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &n_peers in &sizes {
        let mut reference_paths = None;
        let mut row: Vec<Cell> = Vec::new();
        for &n_threads in &threads {
            let cfg = config(n_peers, n_threads);
            let mut best_ms = f64::INFINITY;
            let mut overlay = None;
            for _ in 0..repetitions {
                let start = Instant::now();
                let result = construct(&cfg);
                best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
                overlay = Some(result);
            }
            let overlay = overlay.expect("at least one repetition ran");
            let paths = overlay.peer_paths();
            let parity = match &reference_paths {
                None => {
                    reference_paths = Some(paths);
                    true
                }
                Some(reference) => *reference == paths,
            };
            row.push(Cell {
                n_peers,
                n_threads,
                wall_ms: best_ms,
                speedup: None,
                rounds: overlay.metrics.rounds,
                interactions: overlay.metrics.interactions,
                parity,
            });
        }
        // Speedups are relative to the single-threaded cell of the row (the
        // first cell if the requested thread list has no `1`).  A cell whose
        // thread count exceeds the host's parallelism has no meaningful
        // speedup — on a single-core container every multi-thread "speedup"
        // is scheduler noise around 1.0 — so those stay unreported.
        let baseline = row
            .iter()
            .find(|c| c.n_threads == 1)
            .or(row.first())
            .map(|c| c.wall_ms)
            .unwrap_or(1.0);
        for cell in &mut row {
            if cell.n_threads == 1 || cell.n_threads <= host_threads {
                cell.speedup = Some(baseline / cell.wall_ms);
            }
        }
        for cell in &row {
            let speedup = match cell.speedup {
                Some(s) => format!("{s:.2}x"),
                None => "n/a".to_string(),
            };
            println!(
                "{:>8} {:>9} {:>12.1} {:>9} {:>8} {:>13} {:>7}",
                cell.n_peers,
                cell.n_threads,
                cell.wall_ms,
                speedup,
                cell.rounds,
                cell.interactions,
                cell.parity
            );
        }
        cells.extend(row);
    }

    let all_parity = cells.iter().all(|c| c.parity);
    assert!(
        all_parity,
        "thread-count parity violated — scaling numbers would be meaningless"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"construction_scaling\",\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"thread_parity\": {all_parity},\n"));
    json.push_str("  \"results\": [\n");
    for (at, c) in cells.iter().enumerate() {
        let speedup = match c.speedup {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        };
        json.push_str(&format!(
            "    {{\"n_peers\": {}, \"n_threads\": {}, \"wall_ms\": {:.1}, \"speedup\": {speedup}, \"rounds\": {}, \"interactions\": {}}}{}\n",
            c.n_peers,
            c.n_threads,
            c.wall_ms,
            c.rounds,
            c.interactions,
            if at + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).expect("snapshot file must be writable");
    println!("snapshot written to {out}");
}
