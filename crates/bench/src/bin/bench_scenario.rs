//! Scenario-executor overhead snapshot.
//!
//! ```text
//! cargo run --release -p pgrid-bench --bin bench_scenario -- [--quick] [--out PATH]
//! ```
//!
//! Runs the Section-5 deployment twice per repetition — once through the
//! historical direct driver (`pgrid_net::experiment::run_deployment`) and
//! once through the scenario executor
//! (`pgrid_scenario::deployment::run_deployment`) — and reports the
//! executor's wall-clock overhead.  The two paths perform identical
//! protocol work (the reports are byte-equal; pinned by the
//! `timeline_parity` test), so any difference is pure executor dispatch.
//! The JSON lands in `BENCH_scenario.json` so future PRs get a perf
//! trajectory for the abstraction (target: ≤ 2 % overhead).

use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::NetConfig;
use std::time::Instant;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if xs.is_empty() {
        return 0.0;
    }
    let mid = xs.len() / 2;
    if xs.len() % 2 == 0 {
        (xs[mid - 1] + xs[mid]) / 2.0
    } else {
        xs[mid]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|at| args.get(at + 1))
        .cloned();

    let (n_peers, repetitions) = if quick { (48, 3) } else { (96, 5) };
    let config = NetConfig {
        n_peers,
        seed: 4,
        ..NetConfig::default()
    };
    let timeline = Timeline::default();

    println!(
        "scenario executor overhead: {n_peers} peers, {} minutes of virtual time, {repetitions} repetitions",
        timeline.end_min
    );

    let mut direct_ms = Vec::with_capacity(repetitions);
    let mut scenario_ms = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let t = Instant::now();
        let direct = pgrid_net::experiment::run_deployment(&config, &timeline);
        direct_ms.push(t.elapsed().as_secs_f64() * 1000.0);

        let t = Instant::now();
        let scenario = pgrid_scenario::deployment::run_deployment(&config, &timeline);
        scenario_ms.push(t.elapsed().as_secs_f64() * 1000.0);

        assert_eq!(
            direct, scenario,
            "the two paths must do identical protocol work"
        );
        println!(
            "  rep {rep}: direct {:.1} ms, scenario {:.1} ms",
            direct_ms[rep], scenario_ms[rep]
        );
    }

    let direct = median(direct_ms.clone());
    let scenario = median(scenario_ms.clone());
    let overhead_pct = if direct > 0.0 {
        (scenario - direct) / direct * 100.0
    } else {
        0.0
    };
    println!(
        "median: direct {direct:.1} ms, scenario {scenario:.1} ms, overhead {overhead_pct:+.2} %"
    );

    let fmt_list = |xs: &[f64]| {
        xs.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"bench\": \"scenario_executor_overhead\",\n  \"n_peers\": {n_peers},\n  \
         \"timeline_end_min\": {},\n  \"repetitions\": {repetitions},\n  \
         \"quick\": {quick},\n  \"direct_ms\": [{}],\n  \"scenario_ms\": [{}],\n  \
         \"direct_median_ms\": {direct:.3},\n  \"scenario_median_ms\": {scenario:.3},\n  \
         \"overhead_pct\": {overhead_pct:.3}\n}}\n",
        timeline.end_min,
        fmt_list(&direct_ms),
        fmt_list(&scenario_ms),
    );
    if let Some(path) = out_path {
        std::fs::write(&path, &json).expect("write bench json");
        println!("wrote {path}");
    } else {
        print!("{json}");
    }
}
