//! A network partition that heals: queries degrade inside the split and
//! recover after it.
//!
//! ```text
//! cargo run -p pgrid --example partition_heal
//! cargo run -p pgrid --example partition_heal -- smoke   # small & fast, for CI
//! ```
//!
//! The overlay is constructed on a healthy network, then the loopback
//! transport drops every frame crossing a two-halves split for a few
//! minutes of the query load ([`Scenario::builder`]'s `partition` phase —
//! seeded fault injection, so the run is reproducible).  Queries whose key
//! lives on the issuing side still succeed; cross-partition lookups fail
//! until the window closes, after which the same load converges again —
//! the paper's replication keeps both halves serving their share of the
//! keyspace meanwhile.

use pgrid::prelude::*;

fn scenario(seed: u64, n_peers: usize) -> Scenario {
    // Two contiguous halves: with peers assigned to trie paths by their
    // keys (not their ids), each half holds a mix of partitions plus
    // replicas — exactly the regime the paper's availability argument
    // assumes.
    let halves = vec![
        (0..n_peers / 2).collect::<Vec<_>>(),
        (n_peers / 2..n_peers).collect::<Vec<_>>(),
    ];
    Scenario::builder(seed)
        .join_wave(3, 6)
        .replicate(IndexId::PRIMARY, 5)
        .start_construction(IndexId::PRIMARY)
        .run_until(16)
        .snapshot("constructed")
        // The split is armed now and the transport enforces the window:
        // every frame crossing the halves between minutes 17 and 20 is
        // dropped, then the network heals on its own.
        .partition(halves, 17, 20)
        .query_load(IndexId::PRIMARY, 20)
        .snapshot("partitioned")
        .query_load(IndexId::PRIMARY, 24)
        .snapshot("healed")
        .drain()
        .build()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let n_peers = if smoke { 24 } else { 64 };
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 42,
        ..NetConfig::default()
    };
    let scenario = scenario(config.seed, n_peers);

    println!(
        "partition-and-heal: {n_peers} peers, two halves split during minutes 17-20 of the query load"
    );
    let mut overlay = Runtime::new(config);
    let report = pgrid::scenario::run(&mut overlay, &scenario);

    // Query counters are cumulative; the per-window rates are the deltas
    // between consecutive snapshots.
    let mut last = (0usize, 0usize);
    for snapshot in &report.snapshots {
        let primary = snapshot.index(IndexId::PRIMARY).expect("primary");
        let issued = primary.queries_issued - last.0;
        let succeeded = primary.queries_succeeded - last.1;
        last = (primary.queries_issued, primary.queries_succeeded);
        let rate = if issued == 0 {
            100.0
        } else {
            100.0 * succeeded as f64 / issued as f64
        };
        println!(
            "  {:<12} @ minute {:>3}: {:>3} online, mean depth {:.2}, deviation {:.3}, \
             {:>4} queries this window ({rate:.0}% ok)",
            snapshot.label,
            snapshot.at_min,
            snapshot.online,
            primary.mean_path_length,
            primary.balance_deviation,
            issued,
        );
    }

    let by_label = |label: &str| {
        report
            .snapshots
            .iter()
            .find(|s| s.label == label)
            .and_then(|s| s.index(IndexId::PRIMARY))
            .expect("labelled snapshot with a primary index")
    };
    let partitioned = by_label("partitioned");
    let healed = by_label("healed");
    let healed_issued = healed.queries_issued - partitioned.queries_issued;
    let healed_ok = healed.queries_succeeded - partitioned.queries_succeeded;
    assert!(healed_issued > 0, "the healed window issued no queries");
    assert!(
        healed_ok as f64 >= 0.8 * healed_issued as f64,
        "queries did not recover after the partition healed: {healed_ok}/{healed_issued}"
    );
    println!("after the window closed, the same load converges again: the partition healed");
}
