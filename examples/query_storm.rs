//! Query-data-plane storm: sustained lookups plus range queries against a
//! constructed overlay, with the latency histogram and Prometheus counters
//! printed at the end.
//!
//! ```text
//! cargo run -p pgrid --example query_storm
//! cargo run -p pgrid --example query_storm -- smoke   # small & fast, for CI
//! ```
//!
//! Builds the overlay on the emulated wide-area network, then keeps the
//! data plane busy through two load phases — a range window (trie-walk
//! fan-out over key intervals) followed by the ordinary lookup load — and
//! reports what production monitoring would see: percentiles from the
//! log-scale latency histogram and the text-exposition counters.  In smoke
//! mode the example doubles as an end-to-end check and exits non-zero if
//! the storm degrades the data plane.

use pgrid::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke" || a == "--smoke");
    let (n_peers, construct_min, range_min, query_min) = if smoke {
        (32, 18, 21, 25)
    } else {
        (96, 25, 30, 40)
    };
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        latency_min_ms: 20,
        latency_max_ms: 250,
        loss_probability: 0.01,
        seed: 21,
        ..NetConfig::default()
    };

    let scenario = Scenario::builder(config.seed)
        .join_wave(3, 6)
        .replicate(IndexId::PRIMARY, 5)
        .start_construction(IndexId::PRIMARY)
        .run_until(construct_min)
        .snapshot("constructed")
        .range_load(IndexId::PRIMARY, range_min, 0, RANGE_LOAD_WIDTH)
        .query_load(IndexId::PRIMARY, query_min)
        .drain()
        .build();

    println!(
        "query storm: {} peers, construct<{} range<{} lookups<{} (minutes)",
        n_peers, construct_min, range_min, query_min
    );

    let mut overlay = Runtime::new(config);
    let report = pgrid::scenario::run(&mut overlay, &scenario);
    let constructed = report.snapshots[0]
        .index(IndexId::PRIMARY)
        .expect("primary index");
    println!(
        "constructed @ minute {}: mean depth {:.2}, deviation {:.3}",
        report.snapshots[0].at_min, constructed.mean_path_length, constructed.balance_deviation
    );

    let stats = overlay.metrics.stats(IndexId::PRIMARY);
    println!("\nlookup plane:");
    println!(
        "  issued {}, answered {}, succeeded {}, timed out {}, late {}",
        stats.issued, stats.answered, stats.succeeded, stats.timed_out, stats.late_responses
    );
    println!(
        "  latency p50 {:?} p90 {:?} p99 {:?} p999 {:?} ms, mean hops {:.2}",
        stats.latency.quantile(0.50),
        stats.latency.quantile(0.90),
        stats.latency.quantile(0.99),
        stats.latency.quantile(0.999),
        stats.mean_hops_successful()
    );
    println!("\nrange plane:");
    println!(
        "  issued {}, complete {}, latency p50 {:?} p99 {:?} ms",
        stats.ranges_issued,
        stats.ranges_complete,
        stats.range_latency.quantile(0.50),
        stats.range_latency.quantile(0.99)
    );

    // The Prometheus counters a scrape would see (histogram bucket lines
    // summarised — the full exposition repeats one line per bucket).
    let text = overlay.metrics.metrics_text();
    let buckets = text
        .lines()
        .filter(|l| l.starts_with("pgrid_net_query_latency_ms_bucket"))
        .count();
    println!("\nmetrics exposition ({buckets} histogram bucket lines elided):");
    for line in text
        .lines()
        .filter(|l| !l.starts_with("pgrid_net_query_latency_ms_bucket"))
    {
        println!("  {line}");
    }

    if smoke {
        assert!(
            stats.success_rate() > 0.8,
            "storm degraded the lookup plane: success rate {:.2}",
            stats.success_rate()
        );
        assert!(stats.ranges_issued > 0, "range window issued nothing");
        assert_eq!(
            stats.ranges_complete, stats.ranges_issued,
            "{}/{} ranges complete",
            stats.ranges_complete, stats.ranges_issued
        );
        assert!(
            stats.latency.quantile(0.5).is_some(),
            "no latency samples recorded"
        );
        println!("\nsmoke checks passed");
    }
}
