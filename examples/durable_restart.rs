//! Warm worker restart from a durable log.
//!
//! ```text
//! cargo run --release -p pgrid --example durable_restart
//! cargo run --release -p pgrid --example durable_restart -- smoke   # small & fast, for CI
//! ```
//!
//! Runs the multi-process deployment twice, killing the same worker
//! mid-construction both times (fault injection scheduled through the
//! coordinator's `Welcome`):
//!
//! * **cold** — the PR-8 healing path: the orphaned shard is reassigned
//!   onto the survivors and every peer is rebuilt from live P-Grid
//!   replicas over the data plane;
//! * **warm** — every worker journals its shard with `--data-dir`; the
//!   killed process is relaunched with identical arguments, replays its
//!   log, rejoins inside the coordinator's grace window, reclaims its own
//!   shard, and reconciles the crash window against live replicas with an
//!   anti-entropy diff.
//!
//! The example prints both recovery paths side by side: what was rebuilt,
//! from where, and how long the healing round took.
//!
//! The spawned workers are copies of this example binary re-invoked with
//! a `worker` argument, dispatching straight into the cluster worker
//! runtime — the same code `pgrid-cluster worker` runs.

use pgrid::cluster::coordinator::{HealConfig, KillPlan, WorkerFailure};
use pgrid::cluster::local::{run_local_observed, LocalOptions};
use pgrid::cluster::worker::{run_worker, WorkerOptions};
use pgrid::prelude::*;
use std::path::PathBuf;

/// The re-exec entry: `durable_restart worker --connect ADDR [--data-dir D]`.
fn worker_main(args: &[String]) -> ! {
    let option = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|at| args.get(at + 1))
            .cloned()
    };
    let addr = option("--connect")
        .expect("worker mode needs --connect")
        .parse()
        .expect("bad --connect address");
    let options = WorkerOptions {
        metrics_addr: None,
        flight_dump: None,
        data_dir: option("--data-dir").map(PathBuf::from),
        ..WorkerOptions::default()
    };
    match run_worker(addr, &options) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run_killed(
    config: &NetConfig,
    timeline: &Timeline,
    warm: bool,
    data_dir: &std::path::Path,
) -> WorkerFailure {
    let options = LocalOptions {
        workers: 3,
        worker_exe: None, // re-exec this example binary; main() dispatches
        inherit_stderr: false,
        heal: HealConfig {
            heartbeat_ms: 200,
            failure_timeout_ms: 8_000,
            heal: true,
            rejoin_grace_ms: if warm { 30_000 } else { 0 },
            kill: Some(KillPlan {
                worker: 2,
                at_min: 10,
            }),
        },
        data_dir: Some(data_dir.to_path_buf()),
        relaunch: warm,
        ..LocalOptions::default()
    };
    let (report, observed) =
        run_local_observed(config, timeline, &options).expect("killed-worker run must complete");
    assert!(
        report.balance_deviation < 1.5,
        "run did not converge: deviation {}",
        report.balance_deviation
    );
    let failure = observed
        .failures
        .first()
        .expect("the injected kill must be observed")
        .clone();
    assert!(failure.healed, "the failure was not healed: {failure:?}");
    failure
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("worker") {
        worker_main(&args);
    }
    let smoke = args.iter().any(|a| a == "smoke");
    let (n_peers, timeline) = if smoke {
        (
            24,
            Timeline {
                join_end_min: 3,
                replicate_end_min: 5,
                construct_end_min: 18,
                range_end_min: 0,
                query_end_min: 22,
                end_min: 25,
            },
        )
    } else {
        (48, Timeline::default())
    };
    let config = NetConfig {
        n_peers,
        keys_per_peer: 100,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 12,
        ..NetConfig::default()
    };
    let base = std::env::temp_dir().join(format!("pgrid-durable-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    println!(
        "killing worker 2 of 3 at virtual minute 10, twice: cold heal vs warm restart \
         ({n_peers} peers, {} keys)\n",
        n_peers * config.keys_per_peer
    );
    println!("cold: shard reassigned, peers rebuilt from live replicas over the data plane ...");
    let cold = run_killed(&config, &timeline, false, &base.join("cold"));
    println!("warm: worker relaunched with its --data-dir, log replayed, shard reclaimed ...");
    let warm = run_killed(&config, &timeline, true, &base.join("warm"));

    println!("\n                        |      cold |      warm");
    println!(" ---------------------- | --------- | ---------");
    let row = |name: &str, a: u64, b: u64| println!(" {name:<22} | {a:>9} | {b:>9}");
    row(
        "detected after (ms)",
        cold.detected_after_ms,
        warm.detected_after_ms,
    );
    row("healing round (ms)", cold.recovery_ms, warm.recovery_ms);
    row(
        "rebuilt from replicas",
        cold.recovered_replica,
        warm.recovered_replica,
    );
    row(
        "rebuilt locally",
        cold.recovered_local,
        warm.recovered_local,
    );
    row(
        "replayed from log",
        cold.recovered_warm,
        warm.recovered_warm,
    );

    assert!(
        warm.rejoined && !cold.rejoined,
        "attribution mismatch: cold {cold:?}, warm {warm:?}"
    );
    assert_eq!(
        warm.recovered_warm, warm.shard_len,
        "the log did not cover the whole shard: {warm:?}"
    );
    println!(
        "\nok: the warm restart replayed all {} peers from its own log ({}ms healing round \
         vs {}ms rebuilding from replicas).",
        warm.recovered_warm, warm.recovery_ms, cold.recovery_ms
    );
    let _ = std::fs::remove_dir_all(&base);
}
