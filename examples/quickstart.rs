//! Quickstart: build a data-oriented overlay from scratch and query it.
//!
//! ```text
//! cargo run -p pgrid --example quickstart
//! ```
//!
//! The example constructs a 128-peer overlay over a skewed (Pareto) key set
//! using the decentralized parallel construction of the paper, then runs
//! exact-key lookups and an order-preserving range query — the operation
//! that uniform-hashing DHTs cannot support efficiently and that motivates
//! data-oriented overlays in the first place.

use pgrid::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Configure and run the decentralized construction.
    let config = SimConfig {
        n_peers: 128,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Pareto { shape: 1.0 },
        seed: 42,
        ..SimConfig::default()
    };
    println!(
        "constructing a {}-peer overlay ({} keys, n_min = {}) ...",
        config.n_peers,
        config.total_keys(),
        config.n_min
    );
    let overlay = construct(&config);
    println!(
        "  finished in {} rounds, {} interactions ({:.1} per peer), {} keys moved",
        overlay.metrics.rounds,
        overlay.metrics.interactions,
        overlay.metrics.interactions_per_peer(),
        overlay.metrics.total_keys_moved(),
    );
    println!(
        "  trie depth: max {}, mean {:.2}; distinct partitions: {}",
        overlay.max_depth(),
        overlay.mean_depth(),
        overlay.replication_factors().len(),
    );

    // 2. Compare the load balance against the optimal (global-knowledge)
    //    reference partitioning of Algorithm 1.
    let keys: Vec<Key> = overlay.original_entries.iter().map(|e| e.key).collect();
    let reference = ReferencePartitioning::compute(&keys, config.n_peers, overlay.params);
    let report = compare_to_reference(&reference, &overlay.peer_paths());
    println!(
        "  load-balance deviation from the reference partitioning: {:.3}",
        report.deviation
    );

    // 3. Exact-key lookups.
    let mut rng = StdRng::seed_from_u64(7);
    let probe = overlay.original_entries[17];
    let result = lookup(&overlay, PeerId(0), probe.key, &mut rng);
    println!(
        "lookup({}) -> {} entries in {} hops (success: {})",
        probe.key,
        result.entries.len(),
        result.hops,
        result.is_success()
    );

    // 4. An order-preserving range query over 5% of the key space.
    let lo = Key::from_fraction(0.02);
    let hi = Key::from_fraction(0.07);
    let range = range_query(&overlay, PeerId(0), lo, hi, &mut rng);
    println!(
        "range [{lo}, {hi}] -> {} entries from {} partitions in {} hops (complete: {})",
        range.entries.len(),
        range.partitions_visited,
        range.hops,
        range.complete
    );
}
