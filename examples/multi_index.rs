//! Multi-index overlay: two key distributions share one peer population.
//!
//! ```text
//! cargo run -p pgrid --example multi_index
//! cargo run -p pgrid --example multi_index -- smoke   # small & fast, for CI
//! cargo run -p pgrid --example multi_index -- tcp     # over real sockets
//! ```
//!
//! Heterogeneous peer-database work (e.g. HepToX) argues for one peer
//! population serving several indexes behind a common access API.  Here
//! the same peers host a uniform index *and* a skewed (Pareto) one: each
//! index builds its own trie, routing tables and replica sets, while the
//! transport endpoints, bootstrap neighbours and liveness are shared.
//! Secondary-index traffic rides the same frames, enveloped per message.

use pgrid::prelude::*;

const SECONDARY: IndexId = IndexId(1);

fn scenario(seed: u64) -> Scenario {
    Scenario::builder(seed)
        .join_wave(3, 6)
        .replicate(IndexId::PRIMARY, 5)
        .replicate(SECONDARY, 7)
        .start_construction(IndexId::PRIMARY)
        .start_construction(SECONDARY)
        .run_until(22)
        .snapshot("constructed")
        .query_load(IndexId::PRIMARY, 25)
        .query_load(SECONDARY, 28)
        .drain()
        .build()
}

fn print_report(report: &pgrid::scenario::ScenarioReport) {
    let fin = report.final_snapshot();
    println!("\n  index     | mean depth | deviation | replication | queries (ok)");
    println!("  --------- | ---------- | --------- | ----------- | ------------");
    for idx in &fin.indexes {
        println!(
            "  {:<9} | {:>10.2} | {:>9.3} | {:>11.2} | {:>4} ({:.0}%)",
            idx.index.to_string(),
            idx.mean_path_length,
            idx.balance_deviation,
            idx.mean_replication,
            idx.queries_issued,
            100.0 * idx.query_success_rate()
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let tcp = std::env::args().any(|a| a == "tcp");
    let n_peers = if smoke { 24 } else { 64 };
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 23,
        ..NetConfig::default()
    };
    let scenario = scenario(config.seed);

    println!(
        "multi-index overlay: {n_peers} peers hosting a uniform and a Pareto index side by side"
    );
    if tcp {
        println!("running over TCP (real sockets, 127.0.0.1) ...");
        let mut overlay = Runtime::with_transport(config.clone(), TcpTransport::new())
            .expect("TCP endpoints must register");
        overlay.register_index(SECONDARY, &Distribution::Pareto { shape: 1.0 });
        let report = pgrid::scenario::run(&mut overlay, &scenario);
        print_report(&report);
    } else {
        println!("running over loopback (emulated WAN, virtual time) ...");
        let mut overlay = Runtime::new(config.clone());
        overlay.register_index(SECONDARY, &Distribution::Pareto { shape: 1.0 });
        let report = pgrid::scenario::run(&mut overlay, &scenario);
        print_report(&report);
    }
}
