//! Re-indexing: a distribution shift rebuilds the overlay, driven by the
//! Scenario API.
//!
//! ```text
//! cargo run -p pgrid --example reindexing
//! cargo run -p pgrid --example reindexing -- smoke   # small & fast, for CI
//! ```
//!
//! The paper's motivation: when the indexing method changes (new key
//! extraction, new term selection), the existing overlay becomes useless
//! and a new one has to be constructed.  This example drives the simulator
//! through one scenario: construct under uniform keys, snapshot, *shift*
//! the key distribution to a skewed extraction function (Pareto) with
//! [`Phase::ShiftDistribution`], re-construct, snapshot — showing the
//! dynamic re-balancing.  It then compares the parallel construction
//! against the sequential join-based maintenance model, as before.
//!
//! [`Phase::ShiftDistribution`]: pgrid::scenario::Phase::ShiftDistribution

use pgrid::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let populations: &[usize] = if smoke { &[64] } else { &[128, 256, 512] };

    for &n_peers in populations {
        let config = SimConfig {
            n_peers,
            keys_per_peer: 10,
            n_min: 5,
            distribution: Distribution::Uniform,
            seed: 7,
            ..SimConfig::default()
        };

        // One scenario: build the uniform index, then shift the extraction
        // function to Pareto and let the network re-balance.
        let scenario = Scenario::builder(config.seed)
            .replicate(IndexId::PRIMARY, 0)
            .start_construction(IndexId::PRIMARY)
            .construct_until_quiescent(1, config.max_rounds as u64)
            .snapshot("uniform index")
            .shift_distribution(
                IndexId::PRIMARY,
                Distribution::Pareto { shape: 1.0 },
                config.keys_per_peer,
            )
            .construct_until_quiescent(1, config.max_rounds as u64)
            .snapshot("after shift")
            .build();
        let mut overlay = SimOverlay::new(&config);
        let report = pgrid::scenario::run(&mut overlay, &scenario);

        println!("== {n_peers} peers ==");
        for label in ["uniform index", "after shift"] {
            let snapshot = report.snapshot(label).expect("snapshot taken");
            let primary = snapshot.index(IndexId::PRIMARY).expect("primary");
            println!(
                "  {label:<14}: mean depth {:.2}, deviation {:.3}, replication {:.2}",
                primary.mean_path_length, primary.balance_deviation, primary.mean_replication
            );
        }
        let parallel = overlay.network();
        let rounds = parallel.metrics.rounds;
        let interactions = parallel.metrics.interactions;

        // The standard maintenance model (sequential joins) on the shifted
        // workload, for the latency comparison of the paper.
        let sequential = construct_sequentially(&SimConfig {
            distribution: Distribution::Pareto { shape: 1.0 },
            ..config.clone()
        });
        println!(
            "  parallel:   {:>6} interactions, {:>4} rounds of latency",
            interactions, rounds
        );
        println!(
            "  sequential: {:>6} messages,     {:>6} serial steps of latency",
            sequential.messages, sequential.latency
        );
        println!(
            "  latency advantage of the parallel construction: {:.1}x",
            sequential.latency as f64 / rounds.max(1) as f64
        );
    }
}
