//! Re-indexing: rebuilding the overlay from scratch, in parallel versus
//! sequentially.
//!
//! ```text
//! cargo run -p pgrid --example reindexing
//! ```
//!
//! The paper's motivation: when the indexing method changes (new key
//! extraction, new term selection), the existing overlay becomes useless and
//! a new one has to be constructed from scratch.  The standard maintenance
//! model inserts peers one at a time, which serialises the work; the paper's
//! construction runs fully in parallel.  This example rebuilds the same
//! index with both strategies and compares messages and construction
//! latency.

use pgrid::prelude::*;

fn main() {
    for &n_peers in &[128usize, 256, 512] {
        // "Old" index: uniform keys.  "New" indexing method: a skewed
        // extraction function (Pareto), requiring a fresh overlay.
        let config = SimConfig {
            n_peers,
            keys_per_peer: 10,
            n_min: 5,
            distribution: Distribution::Pareto { shape: 1.0 },
            seed: 7,
            ..SimConfig::default()
        };

        // Parallel construction from scratch (this paper).
        let parallel = construct(&config);
        // Sequential join-based construction (standard maintenance model).
        let sequential = construct_sequentially(&config);

        println!("== {n_peers} peers ==");
        println!(
            "  parallel:   {:>6} interactions, {:>4} rounds of latency, mean depth {:.2}",
            parallel.metrics.interactions,
            parallel.metrics.rounds,
            parallel.mean_depth()
        );
        println!(
            "  sequential: {:>6} messages,     {:>6} serial steps of latency, mean depth {:.2}",
            sequential.messages,
            sequential.latency,
            sequential
                .peers
                .iter()
                .map(|p| p.path.len() as f64)
                .sum::<f64>()
                / sequential.peers.len() as f64
        );
        println!(
            "  latency advantage of the parallel construction: {:.1}x",
            sequential.latency as f64 / parallel.metrics.rounds.max(1) as f64
        );
    }
}
