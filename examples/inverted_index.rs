//! Peer-to-peer information retrieval: a distributed inverted file.
//!
//! ```text
//! cargo run -p pgrid --example inverted_index
//! ```
//!
//! This is the application scenario that motivates the paper: documents are
//! spread over peers, every peer extracts index terms from its own
//! documents, and a dedicated overlay indexing the `(term, document)`
//! postings is constructed from scratch.  Keyword lookups and term-prefix
//! searches then route to the peers responsible for the term's key range,
//! and the results are checked against the ground truth of the corpus.

use pgrid::prelude::*;
use pgrid::workload::corpus::{prefix_key_range, term_key, Corpus, CorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);

    // 1. Generate a synthetic document collection (the substitute for the
    //    Alvis collection used in the paper).
    let corpus = Corpus::generate(
        &CorpusConfig {
            documents: 600,
            vocabulary: 1500,
            zipf_exponent: 1.0,
            terms_per_document: 18,
        },
        &mut rng,
    );
    println!(
        "corpus: {} documents, {} vocabulary terms, {} postings",
        corpus.documents.len(),
        corpus.vocabulary.len(),
        corpus.num_postings()
    );

    // 2. Build the overlay from the per-peer postings: 96 peers, each
    //    indexing its own share of the documents.
    let n_peers = 96;
    let per_peer = corpus.partition_postings(n_peers);
    let avg_keys = corpus.num_postings() as f64 / n_peers as f64;
    let config = SimConfig {
        n_peers,
        keys_per_peer: avg_keys.round() as usize,
        n_min: 5,
        distribution: Distribution::Text {
            vocabulary: 1500,
            exponent: 1.0,
        },
        seed: 99,
        ..SimConfig::default()
    };
    // Construct over the synthetic distribution (same statistics as the
    // corpus keys), then load the real postings into the responsible peers,
    // which is exactly what the operational system would hold.
    let mut overlay = construct(&config);
    for postings in &per_peer {
        for posting in postings {
            for peer in overlay.peers.iter_mut() {
                if peer.path.covers(posting.key) {
                    peer.store.insert(*posting);
                }
            }
        }
    }
    println!(
        "overlay: {} peers, max depth {}, mean depth {:.2}",
        overlay.peers.len(),
        overlay.max_depth(),
        overlay.mean_depth()
    );

    // 3. Keyword search: pick a term that occurs in the corpus.
    let term = corpus.documents[0].terms[0].clone();
    let expected = corpus.documents_with_term(&term);
    let result = lookup(&overlay, PeerId(3), term_key(&term), &mut rng);
    let found: Vec<_> = result.entries.iter().map(|e| e.id).collect();
    println!(
        "keyword '{term}': {} postings found in {} hops (corpus ground truth: {})",
        found.len(),
        result.hops,
        expected.len()
    );

    // 4. Prefix search (an order-preserving range query over the term space).
    let prefix: String = term.chars().take(2).collect();
    let (lo, hi) = prefix_key_range(&prefix);
    let range = range_query(&overlay, PeerId(3), lo, hi, &mut rng);
    let mut docs: Vec<_> = range.entries.iter().map(|e| e.id).collect();
    docs.sort();
    docs.dedup();
    let expected_prefix = corpus.documents_with_prefix(&prefix);
    println!(
        "prefix '{prefix}*': {} documents via {} partitions and {} hops (ground truth: {})",
        docs.len(),
        range.partitions_visited,
        range.hops,
        expected_prefix.len()
    );
}
