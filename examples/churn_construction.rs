//! Churn-heavy construction: joins and leaves interleaved with
//! partitioning.
//!
//! ```text
//! cargo run -p pgrid --example churn_construction
//! cargo run -p pgrid --example churn_construction -- smoke   # small & fast, for CI
//! cargo run -p pgrid --example churn_construction -- tcp     # over real sockets
//! ```
//!
//! The paper constructs the overlay on a stable population and only churns
//! afterwards; this ROADMAP workload overlaps the two regimes.  The
//! scenario starts churn *while* the trie is still partitioning: every
//! peer repeatedly drops off mid-construction, so exchanges hit offline
//! partners, replicas bridge the gaps, and the trie must converge anyway.

use pgrid::prelude::*;

const MINUTE: u64 = 60_000;

fn scenario(seed: u64) -> Scenario {
    Scenario::builder(seed)
        .join_wave(3, 6)
        .replicate(IndexId::PRIMARY, 5)
        .start_construction(IndexId::PRIMARY)
        // Churn during construction: drops of 1–2 minutes with 2–4 minute
        // gaps, starting while partitioning is in full swing.
        .churn(
            20,
            3 * MINUTE,
            (MINUTE, 2 * MINUTE),
            (2 * MINUTE, 4 * MINUTE),
            None,
        )
        .snapshot("churned construction")
        // Re-arm tick chains that died while their peer was offline, so
        // the survivors finish partitioning before the query load.
        .start_construction(IndexId::PRIMARY)
        .run_until(23)
        .snapshot("recovered")
        .query_load(IndexId::PRIMARY, 27)
        .drain()
        .build()
}

fn print_report(report: &pgrid::scenario::ScenarioReport) {
    for snapshot in &report.snapshots {
        let primary = snapshot.index(IndexId::PRIMARY).expect("primary");
        println!(
            "  {:<20} @ minute {:>3}: {:>3} online, mean depth {:.2}, deviation {:.3}, \
             {} queries ({:.0}% ok)",
            snapshot.label,
            snapshot.at_min,
            snapshot.online,
            primary.mean_path_length,
            primary.balance_deviation,
            primary.queries_issued,
            100.0 * primary.query_success_rate()
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let tcp = std::env::args().any(|a| a == "tcp");
    let n_peers = if smoke { 24 } else { 64 };
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 71,
        ..NetConfig::default()
    };
    let scenario = scenario(config.seed);

    println!(
        "churn-heavy construction: {n_peers} peers, churn overlaps partitioning from minute 5"
    );
    if tcp {
        println!("running over TCP (real sockets, 127.0.0.1) ...");
        let mut overlay = Runtime::with_transport(config.clone(), TcpTransport::new())
            .expect("TCP endpoints must register");
        let report = pgrid::scenario::run(&mut overlay, &scenario);
        print_report(&report);
    } else {
        println!("running over loopback (emulated WAN, virtual time) ...");
        let mut overlay = Runtime::new(config.clone());
        let report = pgrid::scenario::run(&mut overlay, &scenario);
        print_report(&report);
    }
}
