//! Message-level deployment with churn, written against the Scenario API.
//!
//! ```text
//! cargo run -p pgrid --example deployment_churn
//! cargo run -p pgrid --example deployment_churn -- smoke   # small & fast, for CI
//! ```
//!
//! Builds the paper's Section-5 timeline — join, replicate, construct,
//! query, churn — as an explicit [`Scenario`] program, runs it through the
//! scenario executor on the emulated wide-area network, and prints the
//! labelled snapshots plus the per-minute time series behind Figures 7, 8
//! and 9 and the summary statistics of Section 5.2.

use pgrid::net::experiment::{assemble_report, ReportInputs, Timeline};
use pgrid::prelude::*;

const MINUTE: u64 = 60_000;

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let (n_peers, timeline) = if smoke {
        (
            32,
            Timeline {
                join_end_min: 3,
                replicate_end_min: 5,
                construct_end_min: 18,
                range_end_min: 0,
                query_end_min: 22,
                end_min: 25,
            },
        )
    } else {
        (96, Timeline::default())
    };
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        latency_min_ms: 20,
        latency_max_ms: 250,
        loss_probability: 0.01,
        seed: 4,
        ..NetConfig::default()
    };

    // The Section-5 timeline, spelled out with the scenario builder (the
    // canned `Scenario::from_timeline` builds the same program), plus two
    // snapshots the historical driver could not express.
    let scenario = Scenario::builder(config.seed)
        .join_wave(timeline.join_end_min, 6)
        .replicate(IndexId::PRIMARY, timeline.replicate_end_min)
        .start_construction(IndexId::PRIMARY)
        .run_until(timeline.construct_end_min)
        .snapshot("constructed")
        .query_load(IndexId::PRIMARY, timeline.query_end_min)
        .churn(
            timeline.end_min,
            5 * MINUTE,
            (MINUTE, 5 * MINUTE),
            (5 * MINUTE, 10 * MINUTE),
            Some(QuerySpec {
                index: IndexId::PRIMARY,
                issuers: 0,
            }),
        )
        .drain()
        .build();

    println!(
        "running the deployment scenario: {} peers, {} phases, phases join<{} replicate<{} construct<{} query<{} churn<{} (minutes)",
        config.n_peers,
        scenario.phases.len(),
        timeline.join_end_min,
        timeline.replicate_end_min,
        timeline.construct_end_min,
        timeline.query_end_min,
        timeline.end_min
    );

    let mut overlay = Runtime::new(config.clone());
    let scenario_report = pgrid::scenario::run(&mut overlay, &scenario);
    let report = assemble_report(&ReportInputs::from_runtime(&overlay), &timeline);

    println!("\nscenario snapshots:");
    for snapshot in &scenario_report.snapshots {
        let primary = snapshot.index(IndexId::PRIMARY).expect("primary index");
        println!(
            "  {:<12} @ minute {:>3}: {:>3} online, mean depth {:.2}, deviation {:.3}, {} queries ({:.0}% ok)",
            snapshot.label,
            snapshot.at_min,
            snapshot.online,
            primary.mean_path_length,
            primary.balance_deviation,
            primary.queries_issued,
            100.0 * primary.query_success_rate()
        );
    }

    println!("\n minute | online | maint B/s | query B/s | latency s (std)");
    println!(" ------ | ------ | --------- | --------- | ---------------");
    for sample in report.timeline.iter().step_by(5) {
        println!(
            " {:>6} | {:>6} | {:>9.1} | {:>9.1} | {:>6.2} ({:.2})",
            sample.minute,
            sample.peers_online,
            sample.maintenance_bps,
            sample.query_bps,
            sample.query_latency_mean_s,
            sample.query_latency_std_s
        );
    }

    println!("\nsummary (compare with Section 5.2 of the paper):");
    println!("  load-balance deviation : {:.3}", report.balance_deviation);
    println!("  mean path length       : {:.2}", report.mean_path_length);
    println!("  mean query hops        : {:.2}", report.mean_query_hops);
    println!(
        "  query success rate     : {:.1}%",
        100.0 * report.query_success_rate
    );
    println!("  mean replication       : {:.2}", report.mean_replication);
    println!(
        "  total bandwidth        : {} maintenance bytes, {} query bytes",
        report.total_maintenance_bytes, report.total_query_bytes
    );
}
