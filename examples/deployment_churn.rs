//! Message-level deployment with churn: a scaled-down PlanetLab experiment.
//!
//! ```text
//! cargo run -p pgrid --example deployment_churn
//! ```
//!
//! Runs the full deployment timeline of the paper's Section 5 — join,
//! replicate, construct, query, churn — on the emulated wide-area network
//! and prints the per-minute time series behind Figures 7, 8 and 9 together
//! with the summary statistics of Section 5.2.

use pgrid::prelude::*;

fn main() {
    let config = NetConfig {
        n_peers: 96,
        keys_per_peer: 10,
        n_min: 5,
        latency_min_ms: 20,
        latency_max_ms: 250,
        loss_probability: 0.01,
        seed: 4,
        ..NetConfig::default()
    };
    let timeline = Timeline::default();
    println!(
        "running the deployment experiment: {} peers, phases join<{} replicate<{} construct<{} query<{} churn<{} (minutes)",
        config.n_peers,
        timeline.join_end_min,
        timeline.replicate_end_min,
        timeline.construct_end_min,
        timeline.query_end_min,
        timeline.end_min
    );
    let report = run_deployment(&config, &timeline);

    println!("\n minute | online | maint B/s | query B/s | latency s (std)");
    println!(" ------ | ------ | --------- | --------- | ---------------");
    for sample in report.timeline.iter().step_by(5) {
        println!(
            " {:>6} | {:>6} | {:>9.1} | {:>9.1} | {:>6.2} ({:.2})",
            sample.minute,
            sample.peers_online,
            sample.maintenance_bps,
            sample.query_bps,
            sample.query_latency_mean_s,
            sample.query_latency_std_s
        );
    }

    println!("\nsummary (compare with Section 5.2 of the paper):");
    println!("  load-balance deviation : {:.3}", report.balance_deviation);
    println!("  mean path length       : {:.2}", report.mean_path_length);
    println!("  mean query hops        : {:.2}", report.mean_query_hops);
    println!(
        "  query success rate     : {:.1}%",
        100.0 * report.query_success_rate
    );
    println!("  mean replication       : {:.2}", report.mean_replication);
    println!(
        "  total bandwidth        : {} maintenance bytes, {} query bytes",
        report.total_maintenance_bytes, report.total_query_bytes
    );
}
