//! Deployment over real TCP sockets.
//!
//! ```text
//! cargo run --release -p pgrid --example deployment_tcp
//! cargo run --release -p pgrid --example deployment_tcp -- smoke   # small & fast, for CI
//! ```
//!
//! Runs the Section 5 deployment timeline twice with the same configuration
//! — once over the deterministic loopback transport (the emulated wide-area
//! network) and once over the `std::net` TCP backend with threaded
//! acceptors and per-peer connections — and compares the resulting overlay
//! statistics and frame counters.  The protocol code path is identical;
//! only the wire differs.

use pgrid::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let (n_peers, timeline) = if smoke {
        (
            24,
            Timeline {
                join_end_min: 3,
                replicate_end_min: 5,
                construct_end_min: 18,
                range_end_min: 0,
                query_end_min: 22,
                end_min: 25,
            },
        )
    } else {
        (64, Timeline::default())
    };
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 12,
        ..NetConfig::default()
    };

    println!(
        "deployment with {n_peers} peers over both transports (phases join<{} replicate<{} \
         construct<{} query<{} churn<{} minutes)\n",
        timeline.join_end_min,
        timeline.replicate_end_min,
        timeline.construct_end_min,
        timeline.query_end_min,
        timeline.end_min
    );

    println!("running over loopback (emulated WAN, virtual time) ...");
    let loopback = run_deployment(&config, &timeline);
    println!("running over TCP (real sockets, 127.0.0.1) ...");
    let tcp = run_deployment_with(&config, &timeline, TcpTransport::new())
        .expect("TCP endpoints must register");

    println!("\n                         |  loopback |       TCP");
    println!(" ----------------------- | --------- | ---------");
    let row = |name: &str, a: f64, b: f64| println!(" {name:<23} | {a:>9.3} | {b:>9.3}");
    row(
        "balance deviation",
        loopback.balance_deviation,
        tcp.balance_deviation,
    );
    row(
        "mean path length",
        loopback.mean_path_length,
        tcp.mean_path_length,
    );
    row(
        "mean query hops",
        loopback.mean_query_hops,
        tcp.mean_query_hops,
    );
    row(
        "query success rate",
        loopback.query_success_rate,
        tcp.query_success_rate,
    );
    row(
        "mean replication",
        loopback.mean_replication,
        tcp.mean_replication,
    );
    println!(
        " {:<23} | {:>9} | {:>9}",
        "frames sent", loopback.transport.frames_sent, tcp.transport.frames_sent
    );
    println!(
        " {:<23} | {:>9} | {:>9}",
        "frames delivered", loopback.transport.frames_delivered, tcp.transport.frames_delivered
    );
    println!(
        " {:<23} | {:>9} | {:>9}",
        "frame bytes sent", loopback.transport.bytes_sent, tcp.transport.bytes_sent
    );

    // Per-peer connection metrics only exist on the socket backend: the
    // loopback transport has no connections to count.
    println!(
        "\nbusiest TCP peer links (of {} peers with traffic):",
        tcp.transport.per_peer.len()
    );
    println!(
        " {:>5} {:>9} {:>11} {:>9} {:>11} {:>10} {:>9}",
        "peer", "fr sent", "B sent", "fr recv", "B recv", "reconnects", "failures"
    );
    let mut links: Vec<_> = tcp.transport.per_peer.iter().collect();
    links.sort_by_key(|(_, l)| std::cmp::Reverse(l.frames_sent + l.frames_received));
    for (peer, link) in links.iter().take(8) {
        println!(
            " {:>5} {:>9} {:>11} {:>9} {:>11} {:>10} {:>9}",
            peer,
            link.frames_sent,
            link.bytes_sent,
            link.frames_received,
            link.bytes_received,
            link.reconnects,
            link.send_failures
        );
    }
    let reconnects: u64 = tcp.transport.per_peer.values().map(|l| l.reconnects).sum();
    let failures: u64 = tcp
        .transport
        .per_peer
        .values()
        .map(|l| l.send_failures)
        .sum();
    println!(" total reconnects {reconnects}, send failures {failures}");
    assert!(
        !tcp.transport.per_peer.is_empty(),
        "the TCP run must surface per-peer link metrics"
    );

    let diff = (loopback.balance_deviation - tcp.balance_deviation).abs();
    println!("\nbalance deviation difference between backends: {diff:.3}");
    assert!(
        loopback.balance_deviation < 1.5 && tcp.balance_deviation < 1.5 && diff < 0.75,
        "backends must converge to comparable overlays"
    );
    println!("ok: the TCP deployment converges like the emulated one.");
}
